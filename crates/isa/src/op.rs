//! Operation repertoire: scalar, µSIMD, MOM vector and 3D memory opcodes.

use std::fmt;

pub use mom3d_simd_width::Width;

/// Re-export shim: the lane-width type is defined here so `mom3d-isa`
/// stays dependency-free, and `mom3d-simd` keeps its own identical type.
/// The emulator converts between the two.
mod mom3d_simd_width {
    use std::fmt;

    /// Sub-word lane width of a packed 64-bit value (bytes, halfwords,
    /// words, doubleword). Identical to `mom3d_simd::Width`; duplicated so
    /// the ISA crate has no dependencies.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub enum Width {
        /// Eight 8-bit lanes.
        B8,
        /// Four 16-bit lanes.
        H16,
        /// Two 32-bit lanes.
        W32,
        /// One 64-bit lane.
        D64,
    }

    impl Width {
        /// Number of lanes in a 64-bit word.
        #[inline]
        pub const fn lanes(self) -> usize {
            match self {
                Width::B8 => 8,
                Width::H16 => 4,
                Width::W32 => 2,
                Width::D64 => 1,
            }
        }
    }

    impl fmt::Display for Width {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let s = match self {
                Width::B8 => "b",
                Width::H16 => "h",
                Width::W32 => "w",
                Width::D64 => "d",
            };
            f.write_str(s)
        }
    }
}

/// Scalar integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntOp {
    /// `dst = src1 + src2` (or `src1 + imm`).
    Add,
    /// `dst = src1 - src2`.
    Sub,
    /// `dst = src1 * src2` (3-cycle latency class).
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left by immediate.
    Shl,
    /// Logical shift right by immediate.
    Shr,
    /// Arithmetic shift right by immediate.
    Sar,
    /// Set-less-than (signed compare producing 0/1).
    SltS,
    /// Set-less-than unsigned.
    SltU,
    /// Load immediate / register move.
    Mov,
}

impl fmt::Display for IntOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IntOp::Add => "add",
            IntOp::Sub => "sub",
            IntOp::Mul => "mul",
            IntOp::And => "and",
            IntOp::Or => "or",
            IntOp::Xor => "xor",
            IntOp::Shl => "shl",
            IntOp::Shr => "shr",
            IntOp::Sar => "sar",
            IntOp::SltS => "slt",
            IntOp::SltU => "sltu",
            IntOp::Mov => "mov",
        };
        f.write_str(s)
    }
}

/// µSIMD (MMX-like) packed operations on one 64-bit word.
///
/// These are the element operations of both the MMX-style ISA (applied to
/// one [`crate::MmxReg`]) and MOM (applied to every element of a
/// [`crate::MomReg`]). Shift amounts come from the instruction immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UsimdOp {
    /// Wrapping packed add.
    AddWrap(Width),
    /// Wrapping packed subtract.
    SubWrap(Width),
    /// Unsigned saturating add.
    AddSatU(Width),
    /// Unsigned saturating subtract.
    SubSatU(Width),
    /// Signed saturating add.
    AddSatS(Width),
    /// Signed saturating subtract.
    SubSatS(Width),
    /// Unsigned minimum.
    MinU(Width),
    /// Unsigned maximum.
    MaxU(Width),
    /// Signed minimum.
    MinS(Width),
    /// Signed maximum.
    MaxS(Width),
    /// Unsigned absolute difference.
    AbsDiffU(Width),
    /// Sum of absolute differences of 8 bytes → 64-bit scalar lane.
    SadU8,
    /// Rounding unsigned average (half-pel interpolation).
    AvgU(Width),
    /// Multiply, low half of products (16- or 32-bit lanes).
    MulLow(Width),
    /// Signed 16-bit multiply, high half.
    MulHighS16,
    /// Multiply-add signed 16-bit pairs into 32-bit lanes.
    MaddS16,
    /// Logical left shift by immediate.
    Shl(Width),
    /// Logical right shift by immediate.
    ShrL(Width),
    /// Arithmetic right shift by immediate.
    ShrA(Width),
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Bitwise and-not (`dst = !a & b`).
    AndNot,
    /// Packed equality compare → lane masks.
    CmpEq(Width),
    /// Packed signed greater-than compare → lane masks.
    CmpGtS(Width),
    /// Pack signed 16-bit to unsigned-saturated bytes (`packuswb`).
    PackUs16To8,
    /// Pack signed 16-bit to signed-saturated bytes (`packsswb`).
    PackSs16To8,
    /// Pack signed 32-bit to signed-saturated halfwords (`packssdw`).
    PackSs32To16,
    /// Interleave low lanes (`punpckl`).
    UnpackLo(Width),
    /// Interleave high lanes (`punpckh`).
    UnpackHi(Width),
}

impl UsimdOp {
    /// Execution latency class in cycles (multiplies are longer).
    pub fn latency(self) -> u32 {
        match self {
            UsimdOp::MulLow(_) | UsimdOp::MulHighS16 | UsimdOp::MaddS16 => 3,
            UsimdOp::SadU8 => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for UsimdOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UsimdOp::AddWrap(w) => write!(f, "padd{w}"),
            UsimdOp::SubWrap(w) => write!(f, "psub{w}"),
            UsimdOp::AddSatU(w) => write!(f, "paddus{w}"),
            UsimdOp::SubSatU(w) => write!(f, "psubus{w}"),
            UsimdOp::AddSatS(w) => write!(f, "padds{w}"),
            UsimdOp::SubSatS(w) => write!(f, "psubs{w}"),
            UsimdOp::MinU(w) => write!(f, "pminu{w}"),
            UsimdOp::MaxU(w) => write!(f, "pmaxu{w}"),
            UsimdOp::MinS(w) => write!(f, "pmins{w}"),
            UsimdOp::MaxS(w) => write!(f, "pmaxs{w}"),
            UsimdOp::AbsDiffU(w) => write!(f, "pabsdiff{w}"),
            UsimdOp::SadU8 => write!(f, "psadbw"),
            UsimdOp::AvgU(w) => write!(f, "pavg{w}"),
            UsimdOp::MulLow(w) => write!(f, "pmull{w}"),
            UsimdOp::MulHighS16 => write!(f, "pmulhw"),
            UsimdOp::MaddS16 => write!(f, "pmaddwd"),
            UsimdOp::Shl(w) => write!(f, "psll{w}"),
            UsimdOp::ShrL(w) => write!(f, "psrl{w}"),
            UsimdOp::ShrA(w) => write!(f, "psra{w}"),
            UsimdOp::And => write!(f, "pand"),
            UsimdOp::Or => write!(f, "por"),
            UsimdOp::Xor => write!(f, "pxor"),
            UsimdOp::AndNot => write!(f, "pandn"),
            UsimdOp::CmpEq(w) => write!(f, "pcmpeq{w}"),
            UsimdOp::CmpGtS(w) => write!(f, "pcmpgt{w}"),
            UsimdOp::PackUs16To8 => write!(f, "packuswb"),
            UsimdOp::PackSs16To8 => write!(f, "packsswb"),
            UsimdOp::PackSs32To16 => write!(f, "packssdw"),
            UsimdOp::UnpackLo(w) => write!(f, "punpckl{w}"),
            UsimdOp::UnpackHi(w) => write!(f, "punpckh{w}"),
        }
    }
}

/// Vector reduction operations writing the accumulator register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Accumulate the sum of absolute byte differences of two registers
    /// (the motion-estimation kernel: `acc += Σ |a_i − b_i|`).
    SadAccumU8,
    /// Accumulate the unsigned sum of every lane.
    SumU(Width),
    /// Accumulate the signed sum of every lane.
    SumS(Width),
    /// Accumulate signed 16-bit dot products (`acc += Σ a_i · b_i`).
    DotS16,
}

impl fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReduceOp::SadAccumU8 => write!(f, "vsad.acc"),
            ReduceOp::SumU(w) => write!(f, "vsumu{w}.acc"),
            ReduceOp::SumS(w) => write!(f, "vsums{w}.acc"),
            ReduceOp::DotS16 => write!(f, "vdoth.acc"),
        }
    }
}

/// Instruction opcode.
///
/// The same opcode enum covers the three ISA styles the paper compares;
/// which opcodes a generator may emit is a property of the workload
/// variant (MMX code never contains `VLoad`, MOM code never contains
/// `DvLoad` unless the 3D extension is enabled, and so on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Scalar integer ALU operation.
    IntAlu(IntOp),
    /// Scalar load (1–8 bytes, through L1).
    LoadScalar,
    /// Scalar store (1–8 bytes, through L1).
    StoreScalar,
    /// Conditional branch; the trace records the resolved direction.
    Branch,
    /// µSIMD operation on 64-bit MMX registers.
    Usimd(UsimdOp),
    /// MMX 64-bit load (through L1 on the MMX configuration).
    LoadMmx,
    /// MMX 64-bit store.
    StoreMmx,
    /// MOM vector compute: applies a µSIMD op to `VL` elements.
    VCompute(UsimdOp),
    /// MOM 2D vector load: `VL` 64-bit elements, stride `VS` bytes apart.
    VLoad,
    /// MOM 2D vector store.
    VStore,
    /// MOM vector reduction into an accumulator register.
    VReduce(ReduceOp),
    /// Read the low 64 bits of an accumulator into a scalar register.
    ReadAcc,
    /// Set the vector-length register.
    SetVl,
    /// Set the vector-stride register.
    SetVs,
    /// `3dvload DRi ← (Rj), Rk, W, b`: load `VL` blocks of `W × 64` bits.
    DvLoad,
    /// `3dvmov MRi ← DRj, Ps`: move `VL` byte-aligned 64-bit slices from a
    /// 3D register into a MOM register, then advance the pointer by `Ps`.
    DvMov,
}

/// Issue/execution steering class of an instruction (Table 2 resources).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecClass {
    /// Scalar integer ALU / branch resolution.
    Int,
    /// Scalar or MMX memory access (L1 ports).
    Mem,
    /// µSIMD / MOM vector computation (SIMD FUs).
    Simd,
    /// Vector memory access (the L2 vector port on MOM configurations).
    VecMem,
    /// 3D-register-file to MOM-register-file transfer.
    Mov3d,
}

impl Opcode {
    /// The execution class that determines which issue slot and
    /// functional unit the instruction competes for.
    pub fn class(self) -> ExecClass {
        match self {
            Opcode::IntAlu(_) | Opcode::Branch | Opcode::SetVl | Opcode::SetVs | Opcode::ReadAcc => {
                ExecClass::Int
            }
            Opcode::LoadScalar | Opcode::StoreScalar | Opcode::LoadMmx | Opcode::StoreMmx => {
                ExecClass::Mem
            }
            Opcode::Usimd(_) | Opcode::VCompute(_) | Opcode::VReduce(_) => ExecClass::Simd,
            Opcode::VLoad | Opcode::VStore | Opcode::DvLoad => ExecClass::VecMem,
            Opcode::DvMov => ExecClass::Mov3d,
        }
    }

    /// True for every opcode that references memory.
    pub fn is_mem(self) -> bool {
        matches!(
            self,
            Opcode::LoadScalar
                | Opcode::StoreScalar
                | Opcode::LoadMmx
                | Opcode::StoreMmx
                | Opcode::VLoad
                | Opcode::VStore
                | Opcode::DvLoad
        )
    }

    /// True for loads (memory reads).
    pub fn is_load(self) -> bool {
        matches!(
            self,
            Opcode::LoadScalar | Opcode::LoadMmx | Opcode::VLoad | Opcode::DvLoad
        )
    }

    /// True for stores (memory writes).
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::StoreScalar | Opcode::StoreMmx | Opcode::VStore)
    }

    /// True for MOM / 3D vector instructions (multi-element).
    pub fn is_vector(self) -> bool {
        matches!(
            self,
            Opcode::VCompute(_)
                | Opcode::VLoad
                | Opcode::VStore
                | Opcode::VReduce(_)
                | Opcode::DvLoad
                | Opcode::DvMov
        )
    }

    /// Base execution latency in cycles, excluding memory time and
    /// multi-element occupancy (the timing simulator adds those).
    pub fn base_latency(self) -> u32 {
        match self {
            Opcode::IntAlu(IntOp::Mul) => 3,
            Opcode::IntAlu(_) | Opcode::Branch | Opcode::SetVl | Opcode::SetVs => 1,
            Opcode::ReadAcc => 1,
            Opcode::Usimd(op) | Opcode::VCompute(op) => op.latency(),
            Opcode::VReduce(_) => 2,
            Opcode::LoadScalar | Opcode::LoadMmx => 1,
            Opcode::StoreScalar | Opcode::StoreMmx => 1,
            Opcode::VLoad | Opcode::VStore => 1,
            Opcode::DvLoad => 1,
            // §5.3: "3 cycles of latency for the 3D vector register file
            // (but 1 cycle per transfer)".
            Opcode::DvMov => 3,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Opcode::IntAlu(op) => write!(f, "{op}"),
            Opcode::LoadScalar => write!(f, "ld"),
            Opcode::StoreScalar => write!(f, "st"),
            Opcode::Branch => write!(f, "br"),
            Opcode::Usimd(op) => write!(f, "{op}"),
            Opcode::LoadMmx => write!(f, "movq.ld"),
            Opcode::StoreMmx => write!(f, "movq.st"),
            Opcode::VCompute(op) => write!(f, "v{op}"),
            Opcode::VLoad => write!(f, "vload"),
            Opcode::VStore => write!(f, "vstore"),
            Opcode::VReduce(op) => write!(f, "{op}"),
            Opcode::ReadAcc => write!(f, "rdacc"),
            Opcode::SetVl => write!(f, "setvl"),
            Opcode::SetVs => write!(f, "setvs"),
            Opcode::DvLoad => write!(f, "3dvload"),
            Opcode::DvMov => write!(f, "3dvmov"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_route_to_expected_resources() {
        assert_eq!(Opcode::IntAlu(IntOp::Add).class(), ExecClass::Int);
        assert_eq!(Opcode::LoadScalar.class(), ExecClass::Mem);
        assert_eq!(Opcode::LoadMmx.class(), ExecClass::Mem);
        assert_eq!(Opcode::Usimd(UsimdOp::SadU8).class(), ExecClass::Simd);
        assert_eq!(Opcode::VCompute(UsimdOp::SadU8).class(), ExecClass::Simd);
        assert_eq!(Opcode::VLoad.class(), ExecClass::VecMem);
        assert_eq!(Opcode::DvLoad.class(), ExecClass::VecMem);
        assert_eq!(Opcode::DvMov.class(), ExecClass::Mov3d);
    }

    #[test]
    fn memory_predicates() {
        assert!(Opcode::VLoad.is_load());
        assert!(Opcode::DvLoad.is_load());
        assert!(!Opcode::DvMov.is_mem());
        assert!(Opcode::VStore.is_store());
        assert!(!Opcode::VStore.is_load());
        assert!(Opcode::StoreScalar.is_mem());
    }

    #[test]
    fn vector_predicates() {
        assert!(Opcode::VCompute(UsimdOp::AddWrap(Width::B8)).is_vector());
        assert!(Opcode::DvMov.is_vector());
        assert!(!Opcode::Usimd(UsimdOp::AddWrap(Width::B8)).is_vector());
        assert!(!Opcode::LoadScalar.is_vector());
    }

    #[test]
    fn latencies() {
        assert_eq!(Opcode::IntAlu(IntOp::Mul).base_latency(), 3);
        assert_eq!(Opcode::DvMov.base_latency(), 3);
        assert_eq!(Opcode::Usimd(UsimdOp::MaddS16).base_latency(), 3);
        assert_eq!(Opcode::Usimd(UsimdOp::AddWrap(Width::B8)).base_latency(), 1);
    }

    #[test]
    fn disassembly_spellings() {
        assert_eq!(Opcode::DvLoad.to_string(), "3dvload");
        assert_eq!(Opcode::VCompute(UsimdOp::SadU8).to_string(), "vpsadbw");
        assert_eq!(Opcode::Usimd(UsimdOp::AddSatU(Width::B8)).to_string(), "paddusb");
        assert_eq!(Opcode::VReduce(ReduceOp::SadAccumU8).to_string(), "vsad.acc");
    }
}
