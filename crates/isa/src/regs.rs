//! Typed architectural register names.
//!
//! Each register class is a newtype over its index so that instructions
//! cannot mix, say, a MOM 2D register with a 3D register (C-NEWTYPE).

use crate::arch;
use std::fmt;

macro_rules! reg_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $max:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u8);

        impl $name {
            /// Number of architectural (logical) registers in this class.
            pub const COUNT: usize = $max;

            /// Creates a register name.
            ///
            /// # Panics
            ///
            /// Panics if `index >= Self::COUNT`.
            #[inline]
            pub const fn new(index: u8) -> Self {
                assert!(
                    (index as usize) < $max,
                    concat!(stringify!($name), " index out of range"),
                );
                Self(index)
            }

            /// The register index.
            #[inline]
            pub fn index(self) -> u8 {
                self.0
            }

            /// Iterates over every register of the class.
            pub fn all() -> impl Iterator<Item = Self> {
                (0..$max as u8).map(Self)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

reg_newtype!(
    /// Scalar general-purpose (integer) register `r0..r31`.
    Gpr,
    "r",
    arch::GPR_COUNT
);

reg_newtype!(
    /// µSIMD (MMX-like) 64-bit register `mm0..mm31`.
    MmxReg,
    "mm",
    arch::MMX_LOGICAL_REGS
);

reg_newtype!(
    /// MOM 2D vector register `mr0..mr15` (16 × 64-bit elements).
    MomReg,
    "mr",
    arch::MOM_LOGICAL_REGS
);

reg_newtype!(
    /// 3D vector register `dr0..dr1` (16 × 128-byte elements).
    DReg,
    "dr",
    arch::DREG_LOGICAL_REGS
);

reg_newtype!(
    /// 3D pointer register `pr0..pr1` (7-bit byte offset, paired with the
    /// like-numbered [`DReg`]).
    PReg,
    "pr",
    arch::DREG_LOGICAL_REGS
);

reg_newtype!(
    /// 192-bit accumulator register `acc0..acc1`.
    AccReg,
    "acc",
    arch::ACC_LOGICAL_REGS
);

impl DReg {
    /// The pointer register architecturally paired with this 3D register.
    #[inline]
    pub fn pointer(self) -> PReg {
        PReg::new(self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(Gpr::new(3).to_string(), "r3");
        assert_eq!(MmxReg::new(7).to_string(), "mm7");
        assert_eq!(MomReg::new(15).to_string(), "mr15");
        assert_eq!(DReg::new(1).to_string(), "dr1");
        assert_eq!(PReg::new(0).to_string(), "pr0");
        assert_eq!(AccReg::new(1).to_string(), "acc1");
    }

    #[test]
    fn counts_match_arch() {
        assert_eq!(Gpr::all().count(), 32);
        assert_eq!(MomReg::all().count(), 16);
        assert_eq!(DReg::all().count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_mom_reg_panics() {
        MomReg::new(16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_dreg_panics() {
        DReg::new(2);
    }

    #[test]
    fn dreg_pointer_pairing() {
        assert_eq!(DReg::new(0).pointer(), PReg::new(0));
        assert_eq!(DReg::new(1).pointer(), PReg::new(1));
    }
}
