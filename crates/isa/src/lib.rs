//! # mom3d-isa — the MOM 2D vector ISA and its 3D memory extension
//!
//! Instruction-set definitions for the system reproduced from MICRO-35
//! 2002, *"Three-Dimensional Memory Vectorization for High Bandwidth
//! Media Memory Systems"*:
//!
//! * a scalar core repertoire (integer ALU, scalar loads/stores,
//!   branches) — enough to express the loop and control overhead that the
//!   timing simulator needs to see;
//! * the **µSIMD (MMX-like)** repertoire operating on 64-bit packed
//!   registers;
//! * **MOM**, the Matrix Oriented Multimedia 2D vector ISA: 16 logical
//!   registers of 16 × 64-bit elements, a vector-length register
//!   (`VL ≤ 16`) and a vector-stride register controlling 2D memory
//!   patterns;
//! * the paper's **3D memory extension**: two logical 3D vector registers
//!   of 16 × 128-byte elements with 7-bit pointer registers, and the
//!   `3dvload` / `3dvmov` instructions.
//!
//! The crate defines typed registers, opcodes, the [`Instruction`]
//! carrier used by traces, a disassembler, and [`TraceBuilder`] — the
//! code-generation interface used by the media kernels.
//!
//! ```
//! use mom3d_isa::{TraceBuilder, MomReg, Gpr, Width, UsimdOp};
//!
//! let mut tb = TraceBuilder::new();
//! tb.set_vl(8);
//! tb.set_vs(640); // frame width in bytes
//! let base = tb.li(Gpr::new(1), 0x1_0000);
//! tb.vload(MomReg::new(0), base, 0x1_0000);
//! tb.vload(MomReg::new(1), base, 0x1_0000);
//! tb.vop2(UsimdOp::AbsDiffU(Width::B8), MomReg::new(2), MomReg::new(0), MomReg::new(1));
//! let trace = tb.finish();
//! assert_eq!(trace.len(), 6);
//! ```
//!
//! **Place in the dataflow**: the lingua franca of the stack. The
//! `mom3d-kernels` generators emit [`Trace`]s of [`Instruction`]s,
//! `mom3d-core`'s vectorizer rewrites them, `mom3d-emu` executes them,
//! `mom3d-cpu` times them, and `mom3d-kernels`' workload-image codec
//! serializes them byte-stably for the cross-invocation cache (every
//! opcode/register has a stable binary code derived from these
//! definitions).

pub mod arch;
mod instr;
mod op;
mod regs;
mod trace;

pub use arch::*;
pub use instr::{Instruction, MemAccess, MemPattern, Reg, RegList};
pub use op::{ExecClass, IntOp, Opcode, ReduceOp, UsimdOp, Width};
pub use regs::{AccReg, DReg, Gpr, MmxReg, MomReg, PReg};
pub use trace::{Trace, TraceBuilder, TraceStats};
