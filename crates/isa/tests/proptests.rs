//! Property-based tests of the ISA layer: memory descriptors, operand
//! lists, and trace statistics.

use mom3d_isa::*;
use proptest::prelude::*;

proptest! {
    /// Block addresses follow the arithmetic progression and the
    /// envelope bounds every block.
    #[test]
    fn mem_access_geometry(
        base in 0x1000u64..0x100_0000,
        stride in -4096i64..4096,
        vl in 1u8..=16,
    ) {
        let m = MemAccess::strided2d(base, stride, vl);
        let (lo, hi) = m.envelope();
        for (i, (addr, len)) in m.blocks().enumerate() {
            prop_assert_eq!(addr, (base as i64 + stride * i as i64) as u64);
            prop_assert!(addr >= lo && addr + len as u64 <= hi);
        }
        prop_assert_eq!(m.total_bytes(), vl as u64 * 8);
        // Envelope is tight: both ends touched.
        prop_assert!(m.blocks().any(|(a, _)| a == lo));
        prop_assert!(m.blocks().any(|(a, l)| a + l as u64 == hi));
    }

    /// Overlap is symmetric and detects shared bytes exactly for scalar
    /// pairs.
    #[test]
    fn overlap_exactness(a in 0u64..512, b in 0u64..512, la in 1u8..=8, lb in 1u8..=8) {
        let x = MemAccess::scalar(a, la);
        let y = MemAccess::scalar(b, lb);
        let really = a < b + lb as u64 && b < a + la as u64;
        prop_assert_eq!(x.may_overlap(&y), really);
        prop_assert_eq!(x.may_overlap(&y), y.may_overlap(&x));
    }

    /// RegList preserves order and never exceeds capacity.
    #[test]
    fn reglist_order(indices in proptest::collection::vec(0u8..32, 0..4)) {
        let regs: Vec<Reg> = indices.iter().map(|&i| Reg::Gpr(Gpr::new(i))).collect();
        let list = RegList::from_slice(&regs);
        prop_assert_eq!(list.len(), regs.len());
        let back: Vec<Reg> = list.iter().collect();
        prop_assert_eq!(back, regs);
    }

    /// Trace statistics tally exactly with a straightforward recount.
    #[test]
    fn stats_agree_with_recount(
        n_scalar in 0usize..30,
        n_vload in 0usize..30,
        vl in 1u8..=16,
    ) {
        let mut tb = TraceBuilder::new();
        tb.set_vl(vl);
        tb.set_vs(640);
        let b = tb.li(Gpr::new(1), 0x1000);
        for i in 0..n_scalar {
            tb.alui(IntOp::Add, Gpr::new((2 + i % 8) as u8), b, i as i64);
        }
        for k in 0..n_vload {
            tb.vload(MomReg::new((k % 16) as u8), b, 0x1000 + k as u64);
        }
        let trace = tb.finish();
        let s = trace.stats();
        prop_assert_eq!(s.total as usize, trace.len());
        prop_assert_eq!(s.mem_2d as usize, n_vload);
        if n_vload > 0 {
            prop_assert!((s.avg_dim2() - vl as f64).abs() < 1e-9);
        }
        let recount = trace.iter().filter(|i| i.opcode.is_mem()).count();
        prop_assert_eq!(recount, n_vload);
    }

    /// Display never panics and always names the opcode.
    #[test]
    fn display_total(vl in 1u8..=16, stride in -1000i64..1000) {
        let mut tb = TraceBuilder::new();
        tb.set_vl(vl);
        tb.set_vs(stride);
        let b = tb.li(Gpr::new(0), 0);
        tb.vload(MomReg::new(3), b, 0x2000);
        tb.dvload(DReg::new(1), b, 0x3000, stride, 16, true);
        tb.dvmov(MomReg::new(4), DReg::new(1), -3);
        for i in tb.finish().iter() {
            let s = i.to_string();
            prop_assert!(!s.is_empty());
        }
    }
}
