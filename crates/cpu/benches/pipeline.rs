//! Criterion benchmark of the pipeline timing loop: nanoseconds per
//! simulated (trace) instruction for the three trace shapes the event
//! refactor targets — dense independent ALU code (window-scan bound),
//! strided vector memory (stall/idle-cycle bound) and 3D
//! `3dvload`/`3dvmov` streams (wakeup-chain bound).
//!
//! Smoke mode for CI: `MOM3D_BENCH_SMOKE=1 cargo bench -p mom3d-cpu
//! --bench pipeline` runs each benchmark once, just proving the harness
//! and the traces stay alive.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mom3d_cpu::{MemorySystemKind, Processor, ProcessorConfig};
use mom3d_isa::{DReg, Gpr, MomReg, Trace, TraceBuilder, UsimdOp, Width};

/// Independent scalar ALU ops with a sprinkle of µSIMD: the issue loop
/// sees a full 128-entry window of mostly-ready instructions.
fn dense_alu_trace() -> Trace {
    let mut tb = TraceBuilder::new();
    for i in 0..8192u32 {
        tb.li(Gpr::new((i % 28) as u8), i as i64);
    }
    tb.finish()
}

/// Strided vector loads feeding vector compute on the vector cache:
/// long memory latencies leave the legacy loop spinning through idle
/// cycles between completions.
fn strided_vector_trace() -> Trace {
    let mut tb = TraceBuilder::new();
    tb.set_vl(16);
    tb.set_vs(136);
    let b = tb.li(Gpr::new(1), 0x1_0000);
    for k in 0..1024u64 {
        let d = MomReg::new((k % 8) as u8);
        tb.vload(d, b, 0x1_0000 + (k % 16) * 64);
        tb.vop2(UsimdOp::AbsDiffU(Width::B8), MomReg::new(8 + (k % 4) as u8), d, MomReg::new(12));
    }
    tb.finish()
}

/// The paper's 3D access pattern: one `3dvload` per search window, then
/// a pointer-renamed chain of `3dvmov`s and vector compute.
fn trace_3d() -> Trace {
    let mut tb = TraceBuilder::new();
    tb.set_vl(8);
    let b = tb.li(Gpr::new(1), 0x1_0000);
    for blk in 0..256u64 {
        tb.dvload(DReg::new(0), b, 0x1_0000 + blk * 16, 640, 9, false);
        for _ in 0..8 {
            let m = tb.dvmov(MomReg::new(0), DReg::new(0), 1);
            tb.vop2(UsimdOp::AbsDiffU(Width::B8), MomReg::new(2), m, MomReg::new(1));
        }
    }
    tb.finish()
}

fn bench_pipeline(c: &mut Criterion) {
    let shapes: [(&str, Trace, MemorySystemKind); 3] = [
        ("dense_alu", dense_alu_trace(), MemorySystemKind::Ideal),
        ("strided_vector", strided_vector_trace(), MemorySystemKind::VectorCache),
        ("3d", trace_3d(), MemorySystemKind::VectorCache3d),
    ];
    let mut g = c.benchmark_group("pipeline_ns_per_instr");
    for (name, trace, mem) in &shapes {
        let p = Processor::new(
            ProcessorConfig::mom().with_memory(*mem).with_warm_caches(true),
        );
        g.throughput(Throughput::Elements(trace.len() as u64));
        g.bench_function(*name, |b| b.iter(|| p.run(trace).expect("runs").cycles));
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
