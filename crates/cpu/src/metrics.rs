//! Simulation result metrics.

use std::fmt;

/// Everything the experiment harness needs to regenerate the paper's
/// tables and figures from one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Dynamic instructions committed.
    pub instructions: u64,
    /// Packed scalar operations performed (lanes × elements).
    pub packed_ops: u64,
    /// Vector memory instructions executed (2D + 3D).
    pub vec_mem_instrs: u64,
    /// Scalar/µSIMD memory instructions executed.
    pub scalar_mem_instrs: u64,
    /// Vector-port grant cycles — the Figure 6 "accesses" denominator.
    pub port_accesses: u64,
    /// Energy-relevant L2 accesses from the vector side (bank accesses
    /// for the multi-banked system, wide accesses for the vector cache)
    /// — the Table 4 activity metric.
    pub l2_activity: u64,
    /// 64-bit words moved between the L2 and the register files by
    /// vector memory instructions — the Figure 6 numerator and the
    /// Figure 7 traffic metric.
    pub vec_words: u64,
    /// `3dvmov` transfers executed.
    pub mov3d_instrs: u64,
    /// 64-bit words moved from the 3D register file to MOM registers.
    pub mov3d_words: u64,
    /// 3D-register-file element writes performed by `3dvload`s.
    pub d3_writes: u64,
    /// L2 lookups from the scalar side.
    pub l2_scalar_accesses: u64,
    /// L2 line hits (both sides).
    pub l2_hits: u64,
    /// L2 line misses (both sides).
    pub l2_misses: u64,
    /// L1 lookups.
    pub l1_accesses: u64,
    /// L1 lines invalidated by the exclusive-bit protocol.
    pub coherence_invalidations: u64,
    /// DRAM row-buffer hits (zero unless the backend models DRAM rows,
    /// e.g. `dram-burst`).
    pub dram_row_hits: u64,
    /// DRAM row-buffer misses (row activations).
    pub dram_row_misses: u64,
}

impl Metrics {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Packed operations per cycle (the paper's motivation metric for
    /// 2D ISAs: more work per instruction).
    pub fn ops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.packed_ops as f64 / self.cycles as f64
        }
    }

    /// Effective memory bandwidth in 64-bit words per cache access
    /// (Figure 6).
    pub fn effective_bandwidth(&self) -> f64 {
        if self.port_accesses == 0 {
            0.0
        } else {
            self.vec_words as f64 / self.port_accesses as f64
        }
    }

    /// L2 hit rate over both sides.
    pub fn l2_hit_rate(&self) -> f64 {
        let t = self.l2_hits + self.l2_misses;
        if t == 0 {
            0.0
        } else {
            self.l2_hits as f64 / t as f64
        }
    }

    /// Total energy-relevant L2 activity, including scalar-side lookups
    /// (Table 4 / Figure 11 input).
    pub fn total_l2_activity(&self) -> u64 {
        self.l2_activity + self.l2_scalar_accesses
    }

    /// Accumulates another run's counters into this one (used by the
    /// sweep engine for whole-sweep roll-ups). Every field is a sum, so
    /// `cycles` becomes the *aggregate* simulated cycles across the
    /// merged runs, not a wall-clock of any single one.
    pub fn merge(&mut self, other: &Metrics) {
        let Metrics {
            cycles,
            instructions,
            packed_ops,
            vec_mem_instrs,
            scalar_mem_instrs,
            port_accesses,
            l2_activity,
            vec_words,
            mov3d_instrs,
            mov3d_words,
            d3_writes,
            l2_scalar_accesses,
            l2_hits,
            l2_misses,
            l1_accesses,
            coherence_invalidations,
            dram_row_hits,
            dram_row_misses,
        } = other;
        self.cycles += cycles;
        self.instructions += instructions;
        self.packed_ops += packed_ops;
        self.vec_mem_instrs += vec_mem_instrs;
        self.scalar_mem_instrs += scalar_mem_instrs;
        self.port_accesses += port_accesses;
        self.l2_activity += l2_activity;
        self.vec_words += vec_words;
        self.mov3d_instrs += mov3d_instrs;
        self.mov3d_words += mov3d_words;
        self.d3_writes += d3_writes;
        self.l2_scalar_accesses += l2_scalar_accesses;
        self.l2_hits += l2_hits;
        self.l2_misses += l2_misses;
        self.l1_accesses += l1_accesses;
        self.coherence_invalidations += coherence_invalidations;
        self.dram_row_hits += dram_row_hits;
        self.dram_row_misses += dram_row_misses;
    }

    /// Slowdown of this run relative to a baseline cycle count
    /// (Figures 3 and 9 are slowdowns vs. the MOM-ideal configuration).
    pub fn slowdown_vs(&self, baseline_cycles: u64) -> f64 {
        if baseline_cycles == 0 {
            0.0
        } else {
            self.cycles as f64 / baseline_cycles as f64
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles, {} instrs (IPC {:.2}), eff-bw {:.2} words/access, L2 activity {}",
            self.cycles,
            self.instructions,
            self.ipc(),
            self.effective_bandwidth(),
            self.total_l2_activity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let m = Metrics {
            cycles: 100,
            instructions: 250,
            packed_ops: 800,
            port_accesses: 10,
            vec_words: 40,
            l2_hits: 9,
            l2_misses: 1,
            l2_activity: 25,
            l2_scalar_accesses: 5,
            ..Default::default()
        };
        assert!((m.ipc() - 2.5).abs() < 1e-12);
        assert!((m.ops_per_cycle() - 8.0).abs() < 1e-12);
        assert!((m.effective_bandwidth() - 4.0).abs() < 1e-12);
        assert!((m.l2_hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(m.total_l2_activity(), 30);
        assert!((m.slowdown_vs(80) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_every_field() {
        let a = Metrics {
            cycles: 1,
            instructions: 2,
            packed_ops: 3,
            vec_mem_instrs: 4,
            scalar_mem_instrs: 5,
            port_accesses: 6,
            l2_activity: 7,
            vec_words: 8,
            mov3d_instrs: 9,
            mov3d_words: 10,
            d3_writes: 11,
            l2_scalar_accesses: 12,
            l2_hits: 13,
            l2_misses: 14,
            l1_accesses: 15,
            coherence_invalidations: 16,
            dram_row_hits: 17,
            dram_row_misses: 18,
        };
        let mut total = a;
        total.merge(&a);
        assert_eq!(total.cycles, 2);
        assert_eq!(total.coherence_invalidations, 32);
        assert_eq!(total.dram_row_hits, 34);
        assert_eq!(total.dram_row_misses, 36);
        assert_eq!(total.total_l2_activity(), 2 * (7 + 12));
        // Merging the default is the identity.
        let mut b = a;
        b.merge(&Metrics::default());
        assert_eq!(b, a);
    }

    #[test]
    fn metrics_cross_threads() {
        // The sweep engine moves Metrics out of worker threads.
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Metrics>();
    }

    #[test]
    fn zero_division_is_safe() {
        let m = Metrics::default();
        assert_eq!(m.ipc(), 0.0);
        assert_eq!(m.effective_bandwidth(), 0.0);
        assert_eq!(m.l2_hit_rate(), 0.0);
        assert_eq!(m.slowdown_vs(0), 0.0);
    }
}
