//! # mom3d-cpu — Jinks-like out-of-order timing simulator
//!
//! A trace-driven, cycle-stepped model of the paper's evaluation vehicle
//! (§5.3, Table 2): an aggressive 8-way out-of-order superscalar with an
//! independent multimedia pipeline, in two flavours:
//!
//! * **MMX-style** — 4 µSIMD FUs, 4 issue, 4 L1 memory ports;
//! * **MOM** — 1 SIMD FU with 4 lanes (same aggregate ALU bandwidth),
//!   2 memory issue slots, and a single wide L2 vector port.
//!
//! Any backend registered with [`mom3d_mem::BackendRegistry`] can back
//! the vector port; configurations key it by [`BackendId`]. The paper's
//! four organizations keep their [`MemorySystemKind`] spelling: an
//! idealistic memory (1-cycle, unbounded bandwidth — the Figure 3/9
//! baseline), the 4-port/8-bank **multi-banked** cache, the 4×64-bit
//! **vector cache**, and the vector cache plus **3D register file**
//! (which `3dvload`/`3dvmov` traces require). A row-buffer-aware
//! **DRAM-burst** model (`"dram-burst"`) ships alongside them as the
//! first registry-only backend.
//!
//! The simulator consumes [`mom3d_isa::Trace`]s, resolves register and
//! memory dependences by renaming, and models a 128-entry graduation
//! window, a 32-entry load/store queue, per-class issue widths,
//! functional-unit occupancy (vector instructions occupy their FU for
//! `ceil(VL / lanes)` cycles), cache-port scheduling, L2 hit/miss timing
//! and the exclusive-bit L1 coherence traffic.
//!
//! ```
//! use mom3d_cpu::{Processor, ProcessorConfig, MemorySystemKind};
//! use mom3d_isa::{TraceBuilder, Gpr, MomReg};
//!
//! # fn main() -> Result<(), mom3d_cpu::SimError> {
//! let mut tb = TraceBuilder::new();
//! tb.set_vl(8);
//! tb.set_vs(640);
//! let b = tb.li(Gpr::new(1), 0x1_0000);
//! tb.vload(MomReg::new(0), b, 0x1_0000);
//! let trace = tb.finish();
//!
//! let cfg = ProcessorConfig::mom().with_memory(MemorySystemKind::VectorCache);
//! let metrics = Processor::new(cfg).run(&trace)?;
//! assert!(metrics.cycles > 20); // the load must see L2 latency
//! # Ok(())
//! # }
//! ```
//!
//! **Place in the dataflow**: the timing stage. `mom3d-bench` replays
//! each verified workload's trace through [`Processor::run`] once per
//! experiment cell; the resulting [`Metrics`] feed every figure/table
//! formatter and the `mom3d-power` energy model. This crate never
//! touches data values — correctness lives in `mom3d-emu`.

mod config;
mod depgraph;
mod error;
mod memsys;
mod metrics;
mod pipeline;

pub use config::{MemorySystemKind, ProcessorConfig};
// Re-exported so downstream crates can name backends without a direct
// mom3d-mem dependency.
pub use mom3d_mem::{
    BackendEntry, BackendId, BackendParams, BackendRegistry, BackendStats, DramConfig,
    VectorMemoryBackend,
};
pub use depgraph::{DepEdge, DepGraph, WakeEdge, WakeupLists};
pub use error::SimError;
pub use memsys::MemorySystem;
pub use metrics::Metrics;
pub use pipeline::Processor;
