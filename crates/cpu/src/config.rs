//! Processor configurations (Table 2 of the paper).

use mom3d_mem::{BackendId, BackendParams, BankedConfig, DramConfig, HierarchyConfig, VectorCacheConfig};

/// The four paper memory organizations, kept as a thin parse/compat
/// shim over the open [`BackendId`] namespace so existing binaries and
/// tests keep their spelling.
///
/// The processor itself is keyed by [`BackendId`] — any registered
/// [`mom3d_mem::BackendRegistry`] backend can back it, not just these
/// four. `MemorySystemKind` converts losslessly into the corresponding
/// id via [`From`], and [`MemorySystemKind::parse`] recovers a variant
/// from its id string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemorySystemKind {
    /// Perfect cache: 1-cycle latency, unbounded bandwidth (the
    /// normalization baseline of Figures 3 and 9).
    Ideal,
    /// 4-port, 8-bank multi-banked cache behind a crossbar (Figure 2-a).
    MultiBanked,
    /// Single wide-port vector cache, 4 × 64 bit (Figure 2-b).
    VectorCache,
    /// Vector cache plus the second-level 3D vector register file
    /// (Figure 8-c) — required to execute `3dvload`/`3dvmov`.
    VectorCache3d,
}

impl MemorySystemKind {
    /// The four paper organizations, in canonical (registry) order.
    pub const ALL: [MemorySystemKind; 4] = [
        MemorySystemKind::Ideal,
        MemorySystemKind::MultiBanked,
        MemorySystemKind::VectorCache,
        MemorySystemKind::VectorCache3d,
    ];

    /// True when the configuration includes the 3D register file.
    pub fn has_3d(self) -> bool {
        matches!(self, MemorySystemKind::VectorCache3d | MemorySystemKind::Ideal)
    }

    /// The backend id this organization registers under.
    pub fn id(self) -> BackendId {
        BackendId::new(match self {
            MemorySystemKind::Ideal => "ideal",
            MemorySystemKind::MultiBanked => "multi-banked",
            MemorySystemKind::VectorCache => "vector-cache",
            MemorySystemKind::VectorCache3d => "vector-cache-3d",
        })
    }

    /// The paper organization behind an id string, if it is one of the
    /// four (other registered backends parse via
    /// [`mom3d_mem::BackendRegistry::parse`] instead).
    pub fn parse(s: &str) -> Option<MemorySystemKind> {
        MemorySystemKind::ALL.into_iter().find(|k| k.id().as_str() == s)
    }
}

impl From<MemorySystemKind> for BackendId {
    fn from(kind: MemorySystemKind) -> BackendId {
        kind.id()
    }
}

impl PartialEq<MemorySystemKind> for BackendId {
    fn eq(&self, other: &MemorySystemKind) -> bool {
        *self == other.id()
    }
}

impl PartialEq<BackendId> for MemorySystemKind {
    fn eq(&self, other: &BackendId) -> bool {
        self.id() == *other
    }
}

/// Full processor configuration (Table 2 plus the memory system).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorConfig {
    /// Instructions fetched per cycle (8).
    pub fetch_rate: usize,
    /// Graduation (reorder) window entries (128).
    pub window: usize,
    /// Load/store queue entries (32).
    pub lsq: usize,
    /// Integer issue width (4).
    pub int_issue: usize,
    /// Integer functional units (4).
    pub int_units: usize,
    /// SIMD issue width (MMX 4, MOM 1).
    pub simd_issue: usize,
    /// SIMD functional units (MMX 4, MOM 1).
    pub simd_units: usize,
    /// Lanes (clusters) per SIMD unit (MMX 1, MOM 4).
    pub simd_lanes: usize,
    /// Memory issue width, shared by scalar and vector memory (MMX 4,
    /// MOM 2).
    pub mem_issue: usize,
    /// Scalar (L1) memory ports (MMX 4, MOM 2).
    pub l1_ports: usize,
    /// Commit width (matches fetch).
    pub commit_rate: usize,
    /// Outstanding vector memory transactions (miss/transaction buffers
    /// on the L2 vector port). Bounds how much L2 latency the vector
    /// pipeline can hide — the knob behind Figure 10's sensitivity.
    pub vec_outstanding: usize,
    /// Whether scalar/µSIMD memory models L1 bank conflicts (the
    /// MMX-like multi-banked configuration).
    pub l1_banked: bool,
    /// Pre-touch every line the trace references before timing, so the
    /// run measures steady-state behaviour (the paper's applications run
    /// at 90–99% hit rates; our kernels touch their data too few times
    /// to amortize cold misses otherwise).
    pub warm_caches: bool,
    /// The vector memory backend (any id registered with
    /// [`mom3d_mem::BackendRegistry`]; the four paper organizations via
    /// their [`MemorySystemKind`] spelling).
    pub memory: BackendId,
    /// Cache hierarchy latencies/geometry.
    pub hierarchy: HierarchyConfig,
    /// Multi-banked port system parameters.
    pub banked: BankedConfig,
    /// Vector cache port parameters.
    pub vector_cache: VectorCacheConfig,
    /// DRAM-burst backend parameters.
    pub dram: DramConfig,
}

impl ProcessorConfig {
    /// The MMX-style configuration of Table 2 (aggressive µSIMD
    /// superscalar: 4 SIMD FUs, 4 L1 ports).
    pub fn mmx() -> Self {
        ProcessorConfig {
            fetch_rate: 8,
            window: 128,
            lsq: 32,
            int_issue: 4,
            int_units: 4,
            simd_issue: 4,
            simd_units: 4,
            simd_lanes: 1,
            mem_issue: 4,
            l1_ports: 4,
            commit_rate: 8,
            vec_outstanding: 4,
            l1_banked: true,
            warm_caches: false,
            memory: MemorySystemKind::MultiBanked.id(),
            hierarchy: HierarchyConfig::default(),
            banked: BankedConfig::default(),
            vector_cache: VectorCacheConfig::default(),
            dram: DramConfig::default(),
        }
    }

    /// The MOM configuration of Table 2 (1 × 4-lane SIMD FU, 2 memory
    /// issue, one wide L2 vector port).
    pub fn mom() -> Self {
        ProcessorConfig {
            fetch_rate: 8,
            window: 128,
            lsq: 32,
            int_issue: 4,
            int_units: 4,
            simd_issue: 1,
            simd_units: 1,
            simd_lanes: 4,
            mem_issue: 2,
            l1_ports: 2,
            commit_rate: 8,
            vec_outstanding: 4,
            l1_banked: false,
            warm_caches: false,
            memory: MemorySystemKind::VectorCache.id(),
            hierarchy: HierarchyConfig::default(),
            banked: BankedConfig::default(),
            vector_cache: VectorCacheConfig::default(),
            dram: DramConfig::default(),
        }
    }

    /// Selects the vector memory backend (builder style). Accepts a
    /// [`MemorySystemKind`] or any [`BackendId`].
    pub fn with_memory(mut self, memory: impl Into<BackendId>) -> Self {
        self.memory = memory.into();
        self
    }

    /// The port-system parameters handed to backend factories.
    pub fn backend_params(&self) -> BackendParams {
        BackendParams {
            banked: self.banked,
            vector_cache: self.vector_cache,
            dram: self.dram,
            ..BackendParams::default()
        }
    }

    /// Overrides the L2 hit latency (Figure 10's 20/40/60-cycle sweep).
    pub fn with_l2_latency(mut self, cycles: u32) -> Self {
        self.hierarchy = self.hierarchy.with_l2_latency(cycles);
        self
    }

    /// Enables or disables cache pre-warming (builder style).
    pub fn with_warm_caches(mut self, warm: bool) -> Self {
        self.warm_caches = warm;
        self
    }

    /// Aggregate µSIMD ALU bandwidth in 64-bit operations per cycle
    /// (identical for the two styles by construction — the paper's
    /// fairness argument).
    pub fn simd_bandwidth(&self) -> usize {
        self.simd_units * self.simd_lanes
    }

    /// Checks the configuration against the limits of the timing model.
    ///
    /// The L1 bank-conflict tracker is a per-cycle 64-bit bitmask, so an
    /// `l1_banked` configuration must keep `banked.banks` in `1..=64`
    /// (and a positive interleave granularity, which the bank-index
    /// computation divides by). [`crate::Processor::run`] calls this up
    /// front and surfaces violations as
    /// [`crate::SimError::UnsupportedConfig`] instead of silently
    /// shifting the mask out of range.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SimError::UnsupportedConfig`] naming the
    /// offending parameter.
    pub fn validate(&self) -> Result<(), crate::SimError> {
        if self.l1_banked {
            if self.banked.banks == 0 || self.banked.banks > 64 {
                return Err(crate::SimError::UnsupportedConfig {
                    what: format!(
                        "l1_banked with {} banks (the per-cycle bank-conflict bitmask \
                         tracks 1..=64 banks)",
                        self.banked.banks
                    ),
                });
            }
            if self.banked.interleave_bytes == 0 {
                return Err(crate::SimError::UnsupportedConfig {
                    what: "l1_banked with a zero-byte bank interleave".to_string(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_mmx_column() {
        let c = ProcessorConfig::mmx();
        assert_eq!(c.fetch_rate, 8);
        assert_eq!(c.window, 128);
        assert_eq!(c.lsq, 32);
        assert_eq!(c.int_issue, 4);
        assert_eq!(c.int_units, 4);
        assert_eq!(c.simd_issue, 4);
        assert_eq!(c.simd_units, 4);
        assert_eq!(c.mem_issue, 4);
        assert_eq!(c.l1_ports, 4);
    }

    #[test]
    fn table2_mom_column() {
        let c = ProcessorConfig::mom();
        assert_eq!(c.simd_issue, 1);
        assert_eq!(c.simd_units, 1);
        assert_eq!(c.simd_lanes, 4);
        assert_eq!(c.mem_issue, 2);
        assert_eq!(c.l1_ports, 2);
    }

    #[test]
    fn equal_simd_bandwidth_between_styles() {
        // "providing overall the same FU bandwidth than the MMX processor"
        assert_eq!(ProcessorConfig::mmx().simd_bandwidth(), ProcessorConfig::mom().simd_bandwidth());
    }

    #[test]
    fn l2_latency_sweep_knob() {
        let c = ProcessorConfig::mom().with_l2_latency(40);
        assert_eq!(c.hierarchy.l2_latency, 40);
        assert_eq!(ProcessorConfig::mom().hierarchy.l2_latency, 20);
    }

    #[test]
    fn memory_kind_3d_capability() {
        assert!(MemorySystemKind::VectorCache3d.has_3d());
        assert!(MemorySystemKind::Ideal.has_3d());
        assert!(!MemorySystemKind::VectorCache.has_3d());
        assert!(!MemorySystemKind::MultiBanked.has_3d());
    }

    #[test]
    fn kind_shim_round_trips_through_ids() {
        for kind in MemorySystemKind::ALL {
            assert_eq!(MemorySystemKind::parse(kind.id().as_str()), Some(kind));
            let id: BackendId = kind.into();
            assert_eq!(id, kind, "BackendId == MemorySystemKind");
            assert_eq!(kind, id, "MemorySystemKind == BackendId");
            // The enum's hand-coded capability agrees with the registry.
            assert_eq!(kind.has_3d(), id.has_3d());
            assert_eq!(kind == MemorySystemKind::Ideal, id.is_ideal());
        }
        // Registry-only backends are not paper kinds.
        assert_eq!(MemorySystemKind::parse("dram-burst"), None);
        assert_eq!(MemorySystemKind::parse("nonsense"), None);
    }

    #[test]
    fn validate_rejects_bank_bitmask_overflow() {
        use crate::SimError;
        assert_eq!(ProcessorConfig::mmx().validate(), Ok(()));
        assert_eq!(ProcessorConfig::mom().validate(), Ok(()));
        let mut c = ProcessorConfig::mmx();
        c.banked.banks = 64; // exactly the bitmask width: still fine
        assert_eq!(c.validate(), Ok(()));
        c.banked.banks = 65;
        assert!(matches!(c.validate(), Err(SimError::UnsupportedConfig { .. })));
        c.banked.banks = 0;
        assert!(matches!(c.validate(), Err(SimError::UnsupportedConfig { .. })));
        // Without L1 bank modelling the bank count is never consulted.
        c.l1_banked = false;
        assert_eq!(c.validate(), Ok(()));
        let mut c = ProcessorConfig::mmx();
        c.banked.interleave_bytes = 0;
        assert!(matches!(c.validate(), Err(SimError::UnsupportedConfig { .. })));
    }

    #[test]
    fn with_memory_accepts_kinds_and_raw_ids() {
        let via_kind = ProcessorConfig::mom().with_memory(MemorySystemKind::MultiBanked);
        let via_id = ProcessorConfig::mom().with_memory(BackendId::new("multi-banked"));
        assert_eq!(via_kind, via_id);
        assert_eq!(via_kind.memory.as_str(), "multi-banked");
    }
}
