//! Register and memory dependence analysis over a dynamic trace.
//!
//! Renaming over the dynamic instruction stream: each instruction's
//! sources resolve to the trace index of their last writer. Memory
//! ordering adds one edge from each load to the most recent older store
//! whose byte envelope overlaps it (media traces rarely alias, but
//! correctness-sensitive patterns — e.g. motion-compensation writes
//! followed by re-reads — must serialize).

use mom3d_isa::{Reg, Trace};
use std::collections::VecDeque;

/// How many recent stores are checked for load-store aliasing, mirroring
/// the finite associative search of a real load/store queue.
const STORE_WINDOW: usize = 64;

/// One producer edge: the producing instruction's trace index, and
/// whether the consumer only needs the producer's *pointer register*
/// value.
///
/// Pointer registers are renamed on every `3dvmov`, and the renamed value
/// (`pointer + Ps`, or the `b`-flag constant of a `3dvload`) is computable
/// at rename time — so a pointer-only consumer may issue one cycle after
/// its producer, without waiting for the data movement to finish. This is
/// what lets a chain of `3dvmov`s stream at full rate (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Producing instruction's trace index.
    pub producer: u32,
    /// True when the dependence is carried only by a pointer register.
    pub ptr_only: bool,
}

/// Producer edges of every instruction in a trace (CSR layout).
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    offsets: Vec<u32>,
    edges: Vec<DepEdge>,
}

/// One wakeup edge in the inverted view: which later instruction to
/// notify when a producer issues, and whether the consumer waits only
/// for the producer's renamed pointer value (see [`DepEdge::ptr_only`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakeEdge {
    /// Consuming instruction's trace index.
    pub consumer: u32,
    /// True when the consumer needs only the pointer-register value,
    /// available one cycle after the producer issues.
    pub ptr_only: bool,
}

/// The [`DepGraph`] inverted into per-producer wakeup lists (CSR).
///
/// `DepGraph` answers "which producers must finish before `i` may
/// issue?" — the polling view, paid on every cycle for every waiting
/// instruction. `WakeupLists` answers the event-driven question "whom
/// do I notify when `i` issues?": the scheduler decrements each
/// consumer's outstanding-operand count exactly once per edge, so the
/// total readiness work over a run is `O(edges)` instead of
/// `O(edges × cycles)`.
#[derive(Debug, Clone, Default)]
pub struct WakeupLists {
    offsets: Vec<u32>,
    edges: Vec<WakeEdge>,
    dep_counts: Vec<u32>,
}

impl WakeupLists {
    /// Consumers to wake when instruction `producer` issues, in trace
    /// order.
    pub fn consumers(&self, producer: usize) -> &[WakeEdge] {
        &self.edges[self.offsets[producer] as usize..self.offsets[producer + 1] as usize]
    }

    /// Number of producer edges instruction `i` starts with (the initial
    /// outstanding-operand count of an event-driven scheduler).
    pub fn dep_count(&self, i: usize) -> u32 {
        self.dep_counts[i]
    }

    /// Number of instructions covered.
    pub fn len(&self) -> usize {
        self.dep_counts.len()
    }

    /// True when the lists cover no instructions.
    pub fn is_empty(&self) -> bool {
        self.dep_counts.is_empty()
    }
}

impl DepGraph {
    /// Builds the dependence graph for `trace`.
    pub fn build(trace: &Trace) -> Self {
        let n = trace.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges: Vec<DepEdge> = Vec::with_capacity(n * 2);
        let mut last_writer: Vec<Option<u32>> = vec![None; Reg::FLAT_COUNT];
        let mut recent_stores: VecDeque<(u32, (u64, u64))> = VecDeque::new();

        offsets.push(0);
        for (i, instr) in trace.iter().enumerate() {
            let start = edges.len();
            for src in instr.srcs.iter() {
                if let Some(w) = last_writer[src.flat_index()] {
                    let is_ptr = matches!(src, Reg::P(_));
                    if let Some(e) = edges[start..].iter_mut().find(|e| e.producer == w) {
                        // A producer reached through both a pointer and a
                        // data register is a data dependence.
                        e.ptr_only &= is_ptr;
                    } else {
                        edges.push(DepEdge { producer: w, ptr_only: is_ptr });
                    }
                }
            }
            if instr.opcode.is_load() {
                if let Some(mem) = &instr.mem {
                    let (lo, hi) = mem.envelope();
                    // Most recent older store that overlaps.
                    if let Some(&(s, _)) = recent_stores
                        .iter()
                        .rev()
                        .find(|(_, (slo, shi))| *slo < hi && lo < *shi)
                    {
                        if let Some(e) = edges[start..].iter_mut().find(|e| e.producer == s) {
                            e.ptr_only = false;
                        } else {
                            edges.push(DepEdge { producer: s, ptr_only: false });
                        }
                    }
                }
            }
            if instr.opcode.is_store() {
                if let Some(mem) = &instr.mem {
                    if recent_stores.len() == STORE_WINDOW {
                        recent_stores.pop_front();
                    }
                    recent_stores.push_back((i as u32, mem.envelope()));
                }
            }
            for dst in instr.dsts.iter() {
                last_writer[dst.flat_index()] = Some(i as u32);
            }
            offsets.push(edges.len() as u32);
        }
        DepGraph { offsets, edges }
    }

    /// Producer edges of instruction `i`.
    pub fn deps(&self, i: usize) -> &[DepEdge] {
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Inverts the graph into per-producer [`WakeupLists`] (one
    /// counting-sort pass; no per-edge allocation).
    pub fn invert(&self) -> WakeupLists {
        let n = self.len();
        // offsets[p] = start of producer p's consumer list.
        let mut offsets = vec![0u32; n + 1];
        for e in &self.edges {
            offsets[e.producer as usize + 1] += 1;
        }
        for p in 1..=n {
            offsets[p] += offsets[p - 1];
        }
        let mut cursor = offsets.clone();
        let mut edges = vec![WakeEdge { consumer: 0, ptr_only: false }; self.edges.len()];
        let mut dep_counts = vec![0u32; n];
        for (i, count) in dep_counts.iter_mut().enumerate() {
            let deps = self.deps(i);
            *count = deps.len() as u32;
            for e in deps {
                let p = e.producer as usize;
                edges[cursor[p] as usize] = WakeEdge { consumer: i as u32, ptr_only: e.ptr_only };
                cursor[p] += 1;
            }
        }
        WakeupLists { offsets, edges, dep_counts }
    }

    /// Producer indices of instruction `i` (ignoring edge kinds).
    pub fn dep_indices(&self, i: usize) -> impl Iterator<Item = u32> + '_ {
        self.deps(i).iter().map(|e| e.producer)
    }

    /// Number of instructions covered.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// True when the graph covers no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Longest dependence-chain length (in instructions) — a quick
    /// parallelism diagnostic for tests.
    pub fn critical_path(&self) -> usize {
        let mut depth = vec![0usize; self.len()];
        for i in 0..self.len() {
            depth[i] = self
                .deps(i)
                .iter()
                .map(|e| depth[e.producer as usize] + 1)
                .max()
                .unwrap_or(0);
        }
        depth.into_iter().max().map(|d| d + 1).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mom3d_isa::{Gpr, IntOp, MomReg, TraceBuilder};

    fn producers(g: &DepGraph, i: usize) -> Vec<u32> {
        g.dep_indices(i).collect()
    }

    #[test]
    fn straight_line_chain() {
        let mut tb = TraceBuilder::new();
        let a = tb.li(Gpr::new(1), 1); // 0
        tb.alui(IntOp::Add, Gpr::new(2), a, 1); // 1 <- 0
        tb.alui(IntOp::Add, Gpr::new(3), Gpr::new(2), 1); // 2 <- 1
        let g = DepGraph::build(&tb.finish());
        assert!(producers(&g, 0).is_empty());
        assert_eq!(producers(&g, 1), vec![0]);
        assert_eq!(producers(&g, 2), vec![1]);
        assert_eq!(g.critical_path(), 3);
    }

    #[test]
    fn renaming_breaks_false_dependences() {
        let mut tb = TraceBuilder::new();
        tb.li(Gpr::new(1), 1); // 0
        tb.li(Gpr::new(1), 2); // 1: WAW on r1 — not a dataflow edge
        tb.alui(IntOp::Add, Gpr::new(2), Gpr::new(1), 0); // 2 <- 1 only
        let g = DepGraph::build(&tb.finish());
        assert!(producers(&g, 1).is_empty());
        assert_eq!(producers(&g, 2), vec![1]);
    }

    #[test]
    fn independent_instructions_are_parallel() {
        let mut tb = TraceBuilder::new();
        for i in 0..8 {
            tb.li(Gpr::new(i), i as i64);
        }
        let g = DepGraph::build(&tb.finish());
        assert_eq!(g.critical_path(), 1);
    }

    #[test]
    fn load_depends_on_overlapping_store() {
        let mut tb = TraceBuilder::new();
        let v = tb.li(Gpr::new(1), 42); // 0
        tb.store_scalar(v, Gpr::new(0), 0x100, 8); // 1
        tb.load_scalar(Gpr::new(2), Gpr::new(0), 0x104, 4); // 2: overlaps
        tb.load_scalar(Gpr::new(3), Gpr::new(0), 0x200, 4); // 3: disjoint
        let g = DepGraph::build(&tb.finish());
        assert!(producers(&g, 2).contains(&1));
        assert!(!producers(&g, 3).contains(&1));
        // Memory-ordering edges are never pointer-only.
        assert!(g.deps(2).iter().all(|e| !e.ptr_only));
    }

    #[test]
    fn vector_load_sees_scalar_store() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(4);
        tb.set_vs(640);
        let v = tb.li(Gpr::new(1), 7);
        tb.store_scalar(v, Gpr::new(0), 0x1_0000 + 640, 1);
        tb.vload(MomReg::new(0), Gpr::new(0), 0x1_0000);
        let g = DepGraph::build(&tb.finish());
        let store_idx = 3; // setvl, setvs, li, store, vload
        assert!(producers(&g, 4).contains(&store_idx));
    }

    #[test]
    fn vl_vs_register_dependence() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(4); // index 0 writes VL
        tb.set_vs(640); // index 1 writes VS (non-default, so not elided)
        tb.vload(MomReg::new(0), Gpr::new(0), 0); // index 2 reads both
        let g = DepGraph::build(&tb.finish());
        assert!(producers(&g, 2).contains(&0));
        assert!(producers(&g, 2).contains(&1));
    }

    #[test]
    fn pointer_edges_are_marked() {
        use mom3d_isa::DReg;
        let mut tb = TraceBuilder::new();
        tb.set_vl(4);
        let b = tb.li(Gpr::new(1), 0x1000);
        tb.dvload(DReg::new(0), b, 0x1000, 64, 2, false); // 2
        tb.dvmov(MomReg::new(0), DReg::new(0), 1); // 3 <- 2 (dreg+ptr)
        tb.dvmov(MomReg::new(1), DReg::new(0), 1); // 4 <- 3 (ptr), 2 (dreg)
        let g = DepGraph::build(&tb.finish());
        // Move 3 depends on the dvload through BOTH dreg and pointer:
        // a data dependence.
        let e32 = g.deps(3).iter().find(|e| e.producer == 2).unwrap();
        assert!(!e32.ptr_only);
        // Move 4 depends on move 3 only through the renamed pointer.
        let e43 = g.deps(4).iter().find(|e| e.producer == 3).unwrap();
        assert!(e43.ptr_only, "pointer rename must not serialize the moves");
        // ...and on the dvload's data.
        let e42 = g.deps(4).iter().find(|e| e.producer == 2).unwrap();
        assert!(!e42.ptr_only);
    }

    #[test]
    fn inversion_mirrors_every_edge_exactly_once() {
        use mom3d_isa::DReg;
        let mut tb = TraceBuilder::new();
        tb.set_vl(4); // 0
        let b = tb.li(Gpr::new(1), 0x1000); // 1
        tb.dvload(DReg::new(0), b, 0x1000, 64, 2, false); // 2
        tb.dvmov(MomReg::new(0), DReg::new(0), 1); // 3
        tb.dvmov(MomReg::new(1), DReg::new(0), 1); // 4
        tb.alui(IntOp::Add, Gpr::new(2), b, 1); // 5
        let g = DepGraph::build(&tb.finish());
        let w = g.invert();
        assert_eq!(w.len(), g.len());
        // Forward and inverted edge multisets agree, ptr_only included.
        let mut forward: Vec<(u32, u32, bool)> = Vec::new();
        for i in 0..g.len() {
            assert_eq!(w.dep_count(i) as usize, g.deps(i).len());
            for e in g.deps(i) {
                forward.push((e.producer, i as u32, e.ptr_only));
            }
        }
        let mut inverted: Vec<(u32, u32, bool)> = Vec::new();
        for p in 0..w.len() {
            let consumers = w.consumers(p);
            // Consumers are listed in trace order (the scheduler relies
            // on wakeup determinism).
            assert!(consumers.windows(2).all(|c| c[0].consumer <= c[1].consumer));
            for e in consumers {
                inverted.push((p as u32, e.consumer, e.ptr_only));
            }
        }
        forward.sort_unstable();
        inverted.sort_unstable();
        assert_eq!(forward, inverted);
        // The pointer-only chain between the two moves survives inversion.
        assert!(w.consumers(3).iter().any(|e| e.consumer == 4 && e.ptr_only));
    }

    #[test]
    fn inversion_of_empty_graph() {
        let w = DepGraph::default().invert();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn store_window_is_bounded() {
        // 100 stores then a load overlapping the very first store: the
        // LSQ-like window (64) has forgotten it, so no edge — acceptable
        // because real hardware would also have retired it long before.
        let mut tb = TraceBuilder::new();
        let v = tb.li(Gpr::new(1), 1);
        tb.store_scalar(v, Gpr::new(0), 0x42, 1);
        for i in 0..100u64 {
            tb.store_scalar(v, Gpr::new(0), 0x10_000 + i * 8, 8);
        }
        tb.load_scalar(Gpr::new(2), Gpr::new(0), 0x42, 1);
        let g = DepGraph::build(&tb.finish());
        let last = g.len() - 1;
        assert!(!producers(&g, last).contains(&1));
    }
}
