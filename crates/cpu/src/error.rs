//! Simulator error type.

use std::error::Error;
use std::fmt;

/// Errors raised by the timing simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configured memory backend id is not in the
    /// [`mom3d_mem::BackendRegistry`].
    UnknownBackend {
        /// The unresolved id.
        id: String,
    },
    /// The trace uses 3D memory instructions but the configured memory
    /// system has no 3D register file.
    No3dRegisterFile {
        /// Trace position of the offending instruction.
        index: usize,
    },
    /// An instruction lacked a required descriptor.
    Malformed {
        /// Trace position.
        index: usize,
        /// What was missing.
        what: &'static str,
    },
    /// The processor configuration is outside what the timing model can
    /// represent (e.g. more than 64 L1 banks, which would overflow the
    /// per-cycle bank-conflict bitmask).
    UnsupportedConfig {
        /// What is out of range.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownBackend { id } => {
                write!(f, "memory backend {id:?} is not registered")
            }
            SimError::No3dRegisterFile { index } => write!(
                f,
                "instruction {index} is a 3D memory instruction but the memory system has no 3D register file"
            ),
            SimError::Malformed { index, what } => {
                write!(f, "instruction {index}: malformed ({what})")
            }
            SimError::UnsupportedConfig { what } => {
                write!(f, "unsupported processor configuration: {what}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SimError::No3dRegisterFile { index: 3 };
        assert!(e.to_string().contains("3D"));
        let e: Box<dyn Error> = Box::new(SimError::Malformed { index: 0, what: "mem" });
        assert!(e.to_string().contains("malformed"));
        let e = SimError::UnsupportedConfig { what: "65 L1 banks".into() };
        assert!(e.to_string().contains("65 L1 banks"));
    }
}
