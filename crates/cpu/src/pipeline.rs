//! The out-of-order pipeline model: an event-driven scheduler over the
//! same cycle-accurate semantics as the original scan-everything loop.
//!
//! The timing model is defined cycle by cycle — commit in order, issue
//! oldest-first under per-class budgets, fetch in order — but the
//! implementation does not *evaluate* every cycle:
//!
//! * **Wakeup lists** ([`crate::depgraph::WakeupLists`]) invert the
//!   dependence graph so an instruction's outstanding-operand count is
//!   decremented exactly once per edge when a producer issues, instead
//!   of re-polling every operand of every waiting instruction every
//!   cycle. Fully woken instructions sit in a time-ordered heap and
//!   drop into the in-order ready list when their operands mature.
//! * **Idle-cycle skipping**: a cycle with no commit, no issue and no
//!   fetch changes no architectural or resource state, so `now` jumps
//!   straight to the next completion (`done_at` of an in-flight
//!   instruction) or functional-unit release ([`Units::free_at`])
//!   rather than stepping by 1.
//! * **Pre-decoded traces** ([`DecodedProgram`]): opcode class, base
//!   latency, FU occupancy, memory-descriptor index and packed-op count
//!   are decoded once per run into a dense SoA-style array, so the
//!   issue loop touches one small `Copy` record per instruction instead
//!   of chasing `Instruction` fields.
//!
//! The produced [`Metrics`] are **bit-identical** to the original loop:
//! active cycles run the same commit/issue/fetch logic in the same
//! order (memory-system calls included, so cache state evolves
//! identically), and skipped cycles are exactly those in which the
//! original loop would have done nothing. The original loop survives as
//! the `#[cfg(test)]` oracle [`Processor::run_legacy`], held equivalent
//! by proptest over random traces and by a full kernel × variant ×
//! backend matrix (see the tests below and
//! `tests/backend_equivalence.rs`).

use crate::config::ProcessorConfig;
use crate::depgraph::DepGraph;
use crate::error::SimError;
use crate::memsys::MemorySystem;
use crate::metrics::Metrics;
use mom3d_isa::{ExecClass, MemAccess, Opcode, Trace};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A pool of identical functional units tracked by busy-until cycle.
#[derive(Debug, Clone)]
struct Units {
    busy_until: Vec<u64>,
}

impl Units {
    fn new(n: usize) -> Self {
        Units { busy_until: vec![0; n] }
    }

    /// Earliest cycle at which at least one unit is (or becomes) free.
    ///
    /// `free_at() <= now` is exactly the condition under which
    /// [`Units::acquire`] at `now` succeeds; it is also the pool's
    /// next-release event time for the idle-cycle skip.
    fn free_at(&self) -> u64 {
        self.busy_until.iter().copied().min().unwrap_or(u64::MAX)
    }

    /// Non-mutating probe: true exactly when [`Units::acquire`] at
    /// `now` would succeed.
    fn peek(&self, now: u64) -> bool {
        self.free_at() <= now
    }

    /// Reserves a free unit for `occupancy` cycles starting at `now`.
    fn acquire(&mut self, now: u64, occupancy: u32) -> bool {
        if let Some(u) = self.busy_until.iter_mut().find(|b| **b <= now) {
            *u = now + occupancy as u64;
            true
        } else {
            false
        }
    }
}

/// Sentinel for "no memory descriptor" in [`DecodedOp::mem`].
const NO_MEM: u32 = u32::MAX;

/// One pre-decoded instruction: everything the issue loop reads,
/// flattened into a small `Copy` record.
#[derive(Debug, Clone, Copy)]
struct DecodedOp {
    /// Issue/execution steering class.
    class: ExecClass,
    /// True for memory opcodes (LSQ occupancy).
    is_mem: bool,
    /// True for stores (retire into the store buffer).
    is_store: bool,
    /// True for `3dvload` (routes to the 3D side of the backend).
    is_3d: bool,
    /// Base execution latency in cycles.
    latency: u32,
    /// Functional-unit occupancy in cycles (vector SIMD and `3dvmov`
    /// instructions hold their unit for multiple cycles).
    occupancy: u32,
    /// Captured vector length.
    vl: u8,
    /// Index into [`DecodedProgram::mems`], or [`NO_MEM`].
    mem: u32,
    /// Packed scalar operations performed on commit.
    packed_ops: u64,
}

/// A trace pre-decoded for one run (the FU occupancies depend on the
/// configured lane count, so the decode is per-processor).
struct DecodedProgram {
    ops: Vec<DecodedOp>,
    mems: Vec<MemAccess>,
}

impl DecodedProgram {
    fn decode(trace: &Trace, cfg: &ProcessorConfig) -> Self {
        let mut ops = Vec::with_capacity(trace.len());
        let mut mems = Vec::new();
        for i in trace.iter() {
            let class = i.opcode.class();
            let occupancy = match class {
                ExecClass::Simd if i.opcode.is_vector() => {
                    (i.vl as usize).div_ceil(cfg.simd_lanes) as u32
                }
                // Four lanes move 4 x 64 bit per cycle.
                ExecClass::Mov3d => (i.vl as usize).div_ceil(4) as u32,
                _ => 1,
            };
            let is_mem = i.opcode.is_mem();
            let mem = if is_mem {
                mems.push(i.mem.expect("memory descriptors validated before decode"));
                (mems.len() - 1) as u32
            } else {
                NO_MEM
            };
            ops.push(DecodedOp {
                class,
                is_mem,
                is_store: i.opcode.is_store(),
                is_3d: i.opcode == Opcode::DvLoad,
                latency: i.opcode.base_latency(),
                occupancy,
                vl: i.vl,
                mem,
                packed_ops: i.packed_ops(),
            });
        }
        DecodedProgram { ops, mems }
    }
}

/// Issue-budget slot of an execution class (scalar and vector memory
/// share the memory issue width).
fn budget_slot(class: ExecClass) -> usize {
    match class {
        ExecClass::Int => 0,
        ExecClass::Simd => 1,
        ExecClass::Mem | ExecClass::VecMem => 2,
        ExecClass::Mov3d => 3,
    }
}

/// The out-of-order processor model.
///
/// See the crate docs for the modeled resources. One `Processor` is a
/// reusable configuration; [`Processor::run`] simulates one trace and
/// returns its [`Metrics`].
#[derive(Debug, Clone)]
pub struct Processor {
    config: ProcessorConfig,
}

impl Processor {
    /// Creates a processor with the given configuration.
    pub fn new(config: ProcessorConfig) -> Self {
        Processor { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// Simulates `trace` to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedConfig`] if the configuration is
    /// outside the timing model's limits (see
    /// [`ProcessorConfig::validate`]), [`SimError::UnknownBackend`] if
    /// the configured memory backend id is not registered,
    /// [`SimError::No3dRegisterFile`] if the trace contains 3D memory
    /// instructions and the configured memory system lacks the 3D
    /// register file, or [`SimError::Malformed`] for memory opcodes
    /// without descriptors.
    pub fn run(&self, trace: &Trace) -> Result<Metrics, SimError> {
        let cfg = &self.config;
        cfg.validate()?;
        let instrs = trace.instrs();
        let n = instrs.len();

        // Up-front validation, starting with the backend itself.
        let backend = mom3d_mem::BackendRegistry::get(cfg.memory.as_str())
            .ok_or_else(|| SimError::UnknownBackend { id: cfg.memory.as_str().to_string() })?;
        for (index, i) in instrs.iter().enumerate() {
            match i.opcode {
                Opcode::DvLoad | Opcode::DvMov if !backend.has_3d => {
                    return Err(SimError::No3dRegisterFile { index });
                }
                op if op.is_mem() && i.mem.is_none() => {
                    return Err(SimError::Malformed { index, what: "memory descriptor" });
                }
                _ => {}
            }
        }

        let wake = DepGraph::build(trace).invert();
        let prog = DecodedProgram::decode(trace, cfg);
        let mut memsys = MemorySystem::new(cfg);
        if cfg.warm_caches {
            memsys.warm_from_trace(trace);
        }
        let track_banks = cfg.l1_banked && !backend.is_ideal;
        let mut metrics = Metrics::default();

        let mut done_at: Vec<u64> = vec![u64::MAX; n];
        let mut issued: Vec<bool> = vec![false; n];

        // Wakeup state: outstanding-operand counts, the latest
        // operand-ready time seen so far per instruction, and a heap of
        // (ready_at, index) for fetched, fully woken instructions.
        // Pointer-register results are available one cycle after the
        // producer issues (the renamed value is `ptr + Ps` or the
        // `b`-flag constant), which the wakeup time per edge encodes.
        let mut pending: Vec<u32> = (0..n).map(|i| wake.dep_count(i)).collect();
        let mut edge_ready: Vec<u64> = vec![0; n];
        let mut wakeups: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        // Ready, unissued, in-window instructions in trace (age) order,
        // plus per-budget-slot membership counts for early scan exit.
        let mut ready: Vec<u32> = Vec::with_capacity(cfg.window);
        let mut ready_counts = [0usize; 4];

        let mut window: VecDeque<u32> = VecDeque::with_capacity(cfg.window);
        let mut next_fetch = 0usize;
        let mut lsq_used = 0usize;

        let mut int_units = Units::new(cfg.int_units);
        let mut simd_units = Units::new(cfg.simd_units);
        let mut l1_ports = Units::new(cfg.l1_ports);
        let mut vec_port = Units::new(1);
        let mut vec_txn = Units::new(cfg.vec_outstanding.max(1));
        let mut mov3d_unit = Units::new(1);

        let mut now: u64 = 0;
        // Generous progress bound: every instruction finishes within a few
        // hundred cycles of being oldest, so exceeding this many evaluated
        // cycles means a model bug, not a slow workload.
        let mut steps: u64 = 0;
        let step_bound = 2_000u64 * n as u64 + 1_000_000;

        while next_fetch < n || !window.is_empty() {
            steps += 1;
            assert!(steps < step_bound, "simulator failed to make progress (model bug)");

            // ---- commit (in order, up to commit_rate) ---------------------
            let mut committed = 0usize;
            while committed < cfg.commit_rate {
                match window.front() {
                    Some(&front) if issued[front as usize] && done_at[front as usize] <= now => {
                        let op = &prog.ops[front as usize];
                        if op.is_mem {
                            lsq_used -= 1;
                        }
                        metrics.instructions += 1;
                        metrics.packed_ops += op.packed_ops;
                        window.pop_front();
                        committed += 1;
                    }
                    _ => break,
                }
            }

            // ---- wake: matured instructions join the ready list -----------
            while let Some(&Reverse((t, idx))) = wakeups.peek() {
                if t > now {
                    break;
                }
                wakeups.pop();
                let pos = ready.partition_point(|&r| r < idx);
                ready.insert(pos, idx);
                ready_counts[budget_slot(prog.ops[idx as usize].class)] += 1;
            }

            // ---- issue (oldest first, per-class budgets) ------------------
            // budgets: [int, simd, mem (scalar + vector), mov3d].
            let mut budgets = [cfg.int_issue, cfg.simd_issue, cfg.mem_issue, 1usize];
            let mut banks_used: u64 = 0; // L1 bank bitmask for this cycle
            let mut issued_any = false;
            // How many not-yet-scanned ready entries each slot still has;
            // once every slot is out of budget or out of candidates the
            // rest of the list cannot issue this cycle.
            let mut unseen = ready_counts;

            let mut w = 0usize;
            let mut r = 0usize;
            while r < ready.len() {
                if budgets.iter().zip(unseen.iter()).all(|(&b, &u)| b == 0 || u == 0) {
                    break;
                }
                let idx = ready[r] as usize;
                let op = prog.ops[idx];
                let slot = budget_slot(op.class);
                unseen[slot] -= 1;
                let mut did_issue = false;
                match op.class {
                    ExecClass::Int => {
                        if budgets[0] > 0 && int_units.acquire(now, 1) {
                            budgets[0] -= 1;
                            done_at[idx] = now + op.latency as u64;
                            did_issue = true;
                        }
                    }
                    ExecClass::Simd => {
                        if budgets[1] > 0 && simd_units.acquire(now, op.occupancy) {
                            budgets[1] -= 1;
                            done_at[idx] =
                                now + (op.occupancy - 1) as u64 + op.latency as u64;
                            did_issue = true;
                        }
                    }
                    ExecClass::Mem => 'mem: {
                        if budgets[2] == 0 {
                            break 'mem;
                        }
                        let mem = prog.mems[op.mem as usize];
                        if track_banks {
                            let bank = memsys.bank_of(mem.base);
                            debug_assert!(bank < 64, "bank index validated in ProcessorConfig");
                            if banks_used & (1u64 << bank) != 0 {
                                break 'mem; // bank conflict: retry next cycle
                            }
                            banks_used |= 1u64 << bank;
                        }
                        if !l1_ports.acquire(now, 1) {
                            break 'mem;
                        }
                        budgets[2] -= 1;
                        let latency = memsys.scalar_access(&mem, op.is_store);
                        metrics.scalar_mem_instrs += 1;
                        // Stores retire into the store buffer and drain in
                        // the background; only loads expose access latency.
                        done_at[idx] =
                            if op.is_store { now + 1 } else { now + latency as u64 };
                        did_issue = true;
                    }
                    ExecClass::VecMem => 'vec: {
                        if budgets[2] == 0 {
                            break 'vec;
                        }
                        // Probe both the port and a transaction buffer
                        // before paying for the access (the access mutates
                        // cache state, so it must not be speculated).
                        if !vec_port.peek(now) || !vec_txn.peek(now) {
                            break 'vec;
                        }
                        let mem = prog.mems[op.mem as usize];
                        let timing = memsys.vector_access(&mem, op.is_store, op.is_3d);
                        let ok = vec_port.acquire(now, timing.occupancy);
                        debug_assert!(ok, "vector port probed free");
                        // The transaction buffer is held until the data
                        // returns, bounding latency overlap.
                        let ok = vec_txn.acquire(now, timing.occupancy + timing.latency);
                        debug_assert!(ok, "transaction buffer probed free");
                        budgets[2] -= 1;
                        metrics.vec_mem_instrs += 1;
                        // Vector stores hold the port for their occupancy
                        // but complete without waiting on the L2 write.
                        done_at[idx] = if op.is_store {
                            now + timing.occupancy as u64
                        } else {
                            now + timing.occupancy as u64 + timing.latency as u64
                        };
                        did_issue = true;
                    }
                    ExecClass::Mov3d => {
                        if budgets[3] > 0 && mov3d_unit.acquire(now, op.occupancy) {
                            budgets[3] -= 1;
                            metrics.mov3d_instrs += 1;
                            metrics.mov3d_words += op.vl as u64;
                            done_at[idx] =
                                now + (op.occupancy - 1) as u64 + op.latency as u64;
                            did_issue = true;
                        }
                    }
                }
                if did_issue {
                    issued[idx] = true;
                    issued_any = true;
                    ready_counts[slot] -= 1;
                    let completes = done_at[idx];
                    for e in wake.consumers(idx) {
                        let c = e.consumer as usize;
                        let t = if e.ptr_only { now + 1 } else { completes };
                        if t > edge_ready[c] {
                            edge_ready[c] = t;
                        }
                        pending[c] -= 1;
                        if pending[c] == 0 && c < next_fetch {
                            if edge_ready[c] <= now {
                                // A zero-latency producer (e.g. an L1 hit
                                // with `l1_latency = 0`) completed in its
                                // own issue cycle. The age-ordered scan
                                // reaches this younger consumer later in
                                // the *same* cycle, so splice it into the
                                // unscanned tail of the ready list (it is
                                // younger than every scanned entry) rather
                                // than deferring it a cycle via the heap.
                                let pos = r
                                    + 1
                                    + ready[r + 1..].partition_point(|&x| x < e.consumer);
                                ready.insert(pos, e.consumer);
                                let slot_c = budget_slot(prog.ops[c].class);
                                ready_counts[slot_c] += 1;
                                unseen[slot_c] += 1;
                            } else {
                                wakeups.push(Reverse((edge_ready[c], e.consumer)));
                            }
                        }
                    }
                    r += 1; // drop the issued entry from the ready list
                } else {
                    ready[w] = ready[r];
                    w += 1;
                    r += 1;
                }
            }
            if w < r {
                ready.copy_within(r.., w);
            }
            ready.truncate(ready.len() - (r - w));

            // ---- fetch (in order, bounded by window and LSQ) ---------------
            let mut fetched = 0usize;
            while fetched < cfg.fetch_rate && next_fetch < n && window.len() < cfg.window {
                let op = &prog.ops[next_fetch];
                if op.is_mem && lsq_used == cfg.lsq {
                    break;
                }
                if op.is_mem {
                    lsq_used += 1;
                }
                window.push_back(next_fetch as u32);
                if pending[next_fetch] == 0 {
                    // All producers issued before this instruction was
                    // fetched; it wakes at its recorded operand-ready time.
                    // When that time has already passed (the common case
                    // for dependence-free code) it goes straight to the
                    // back of the ready list — it is the youngest fetched
                    // instruction, so order is preserved — and is first
                    // considered next cycle, exactly as via the heap.
                    if edge_ready[next_fetch] <= now + 1 {
                        ready.push(next_fetch as u32);
                        ready_counts[budget_slot(prog.ops[next_fetch].class)] += 1;
                    } else {
                        wakeups.push(Reverse((edge_ready[next_fetch], next_fetch as u32)));
                    }
                }
                next_fetch += 1;
                fetched += 1;
            }

            // ---- advance --------------------------------------------------
            if committed > 0 || issued_any || fetched > 0 {
                // Budgets reset, pointer operands mature and bank masks
                // clear on the very next cycle, so it must be evaluated.
                now += 1;
            } else {
                // Nothing happened: no budget, bank mask or rename state
                // changed, so re-evaluating intermediate cycles is a no-op.
                // Jump to the next completion or unit release.
                let mut next_event = u64::MAX;
                for &wi in &window {
                    let i = wi as usize;
                    if issued[i] && done_at[i] > now && done_at[i] < next_event {
                        next_event = done_at[i];
                    }
                }
                for units in
                    [&int_units, &simd_units, &l1_ports, &vec_port, &vec_txn, &mov3d_unit]
                {
                    let t = units.free_at();
                    if t > now && t < next_event {
                        next_event = t;
                    }
                }
                debug_assert!(
                    next_event != u64::MAX,
                    "idle cycle with no pending event (model bug)"
                );
                now = if next_event == u64::MAX { now + 1 } else { next_event };
            }
        }

        metrics.cycles = now;
        metrics.port_accesses = memsys.port_accesses;
        metrics.l2_activity = memsys.l2_activity;
        metrics.vec_words = memsys.vec_words;
        metrics.d3_writes = memsys.d3_writes;
        let b = memsys.backend_stats();
        metrics.dram_row_hits = b.row_hits;
        metrics.dram_row_misses = b.row_misses;
        let h = memsys.hierarchy().stats();
        metrics.l2_scalar_accesses = h.l2_scalar_accesses;
        metrics.l2_hits = h.l2_hits;
        metrics.l2_misses = h.l2_misses;
        metrics.l1_accesses = h.l1_accesses;
        metrics.coherence_invalidations = h.coherence_invalidations;
        Ok(metrics)
    }

    /// The original scan-everything-every-cycle timing loop, kept
    /// verbatim as the equivalence oracle for [`Processor::run`] (the
    /// `ports.rs` pattern): the event-driven scheduler must reproduce
    /// its [`Metrics`] bit for bit on any valid trace.
    #[cfg(test)]
    pub(crate) fn run_legacy(&self, trace: &Trace) -> Result<Metrics, SimError> {
        let cfg = &self.config;
        cfg.validate()?;
        let instrs = trace.instrs();
        let n = instrs.len();

        let backend = mom3d_mem::BackendRegistry::get(cfg.memory.as_str())
            .ok_or_else(|| SimError::UnknownBackend { id: cfg.memory.as_str().to_string() })?;
        for (index, i) in instrs.iter().enumerate() {
            match i.opcode {
                Opcode::DvLoad | Opcode::DvMov if !backend.has_3d => {
                    return Err(SimError::No3dRegisterFile { index });
                }
                op if op.is_mem() && i.mem.is_none() => {
                    return Err(SimError::Malformed { index, what: "memory descriptor" });
                }
                _ => {}
            }
        }

        let deps = DepGraph::build(trace);
        let mut memsys = MemorySystem::new(cfg);
        if cfg.warm_caches {
            memsys.warm_from_trace(trace);
        }
        let mut metrics = Metrics::default();

        let mut done_at: Vec<u64> = vec![u64::MAX; n];
        let mut ptr_ready_at: Vec<u64> = vec![u64::MAX; n];
        let mut issued: Vec<bool> = vec![false; n];
        let mut window: VecDeque<u32> = VecDeque::with_capacity(cfg.window);
        let mut next_fetch = 0usize;
        let mut lsq_used = 0usize;

        let mut int_units = Units::new(cfg.int_units);
        let mut simd_units = Units::new(cfg.simd_units);
        let mut l1_ports = Units::new(cfg.l1_ports);
        let mut vec_port = Units::new(1);
        let mut vec_txn = Units::new(cfg.vec_outstanding.max(1));
        let mut mov3d_unit = Units::new(1);

        let mut now: u64 = 0;
        let cycle_bound = 2_000u64 * n as u64 + 1_000_000;

        while next_fetch < n || !window.is_empty() {
            // ---- commit (in order, up to commit_rate) ---------------------
            let mut committed = 0usize;
            while committed < cfg.commit_rate {
                match window.front() {
                    Some(&front) if issued[front as usize] && done_at[front as usize] <= now => {
                        let i = &instrs[front as usize];
                        if i.opcode.is_mem() {
                            lsq_used -= 1;
                        }
                        metrics.instructions += 1;
                        metrics.packed_ops += i.packed_ops();
                        window.pop_front();
                        committed += 1;
                    }
                    _ => break,
                }
            }

            // ---- issue (oldest first, per-class budgets) ------------------
            let mut int_budget = cfg.int_issue;
            let mut simd_budget = cfg.simd_issue;
            let mut mem_budget = cfg.mem_issue;
            let mut mov3d_budget = 1usize;
            let mut banks_used: u64 = 0;

            for &wi in window.iter() {
                let idx = wi as usize;
                if issued[idx] {
                    continue;
                }
                if int_budget == 0 && simd_budget == 0 && mem_budget == 0 && mov3d_budget == 0 {
                    break;
                }
                let instr = &instrs[idx];
                let ready = deps.deps(idx).iter().all(|e| {
                    let d = e.producer as usize;
                    if e.ptr_only {
                        ptr_ready_at[d] <= now
                    } else {
                        done_at[d] <= now
                    }
                });
                if !ready {
                    continue;
                }
                match instr.opcode.class() {
                    ExecClass::Int => {
                        if int_budget == 0 || !int_units.acquire(now, 1) {
                            continue;
                        }
                        int_budget -= 1;
                        done_at[idx] = now + instr.opcode.base_latency() as u64;
                    }
                    ExecClass::Simd => {
                        if simd_budget == 0 {
                            continue;
                        }
                        let occupancy = if instr.opcode.is_vector() {
                            (instr.vl as usize).div_ceil(cfg.simd_lanes) as u32
                        } else {
                            1
                        };
                        if !simd_units.acquire(now, occupancy) {
                            continue;
                        }
                        simd_budget -= 1;
                        done_at[idx] =
                            now + (occupancy - 1) as u64 + instr.opcode.base_latency() as u64;
                    }
                    ExecClass::Mem => {
                        if mem_budget == 0 {
                            continue;
                        }
                        let mem = instr.mem.expect("validated above");
                        if cfg.l1_banked && !backend.is_ideal {
                            let bank = memsys.bank_of(mem.base);
                            if banks_used & (1 << bank) != 0 {
                                continue;
                            }
                            banks_used |= 1 << bank;
                        }
                        if !l1_ports.acquire(now, 1) {
                            continue;
                        }
                        mem_budget -= 1;
                        let latency = memsys.scalar_access(&mem, instr.opcode.is_store());
                        metrics.scalar_mem_instrs += 1;
                        done_at[idx] = if instr.opcode.is_store() {
                            now + 1
                        } else {
                            now + latency as u64
                        };
                    }
                    ExecClass::VecMem => {
                        if mem_budget == 0 {
                            continue;
                        }
                        if !vec_port.peek(now) || !vec_txn.peek(now) {
                            continue;
                        }
                        let mem = instr.mem.expect("validated above");
                        let is_3d = instr.opcode == Opcode::DvLoad;
                        let timing = memsys.vector_access(&mem, instr.opcode.is_store(), is_3d);
                        let ok = vec_port.acquire(now, timing.occupancy);
                        debug_assert!(ok, "vector port probed free");
                        let ok = vec_txn.acquire(now, timing.occupancy + timing.latency);
                        debug_assert!(ok, "transaction buffer probed free");
                        mem_budget -= 1;
                        metrics.vec_mem_instrs += 1;
                        done_at[idx] = if instr.opcode.is_store() {
                            now + timing.occupancy as u64
                        } else {
                            now + timing.occupancy as u64 + timing.latency as u64
                        };
                    }
                    ExecClass::Mov3d => {
                        if mov3d_budget == 0 {
                            continue;
                        }
                        let occupancy = (instr.vl as usize).div_ceil(4) as u32;
                        if !mov3d_unit.acquire(now, occupancy) {
                            continue;
                        }
                        mov3d_budget -= 1;
                        metrics.mov3d_instrs += 1;
                        metrics.mov3d_words += instr.vl as u64;
                        done_at[idx] =
                            now + (occupancy - 1) as u64 + instr.opcode.base_latency() as u64;
                    }
                }
                issued[idx] = true;
                ptr_ready_at[idx] = now + 1;
            }

            // ---- fetch (in order, bounded by window and LSQ) ---------------
            let mut fetched = 0usize;
            while fetched < cfg.fetch_rate && next_fetch < n && window.len() < cfg.window {
                let is_mem = instrs[next_fetch].opcode.is_mem();
                if is_mem && lsq_used == cfg.lsq {
                    break;
                }
                if is_mem {
                    lsq_used += 1;
                }
                window.push_back(next_fetch as u32);
                next_fetch += 1;
                fetched += 1;
            }

            now += 1;
            assert!(now < cycle_bound, "simulator failed to make progress (model bug)");
        }

        metrics.cycles = now;
        metrics.port_accesses = memsys.port_accesses;
        metrics.l2_activity = memsys.l2_activity;
        metrics.vec_words = memsys.vec_words;
        metrics.d3_writes = memsys.d3_writes;
        let b = memsys.backend_stats();
        metrics.dram_row_hits = b.row_hits;
        metrics.dram_row_misses = b.row_misses;
        let h = memsys.hierarchy().stats();
        metrics.l2_scalar_accesses = h.l2_scalar_accesses;
        metrics.l2_hits = h.l2_hits;
        metrics.l2_misses = h.l2_misses;
        metrics.l1_accesses = h.l1_accesses;
        metrics.coherence_invalidations = h.coherence_invalidations;
        Ok(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySystemKind;
    use mom3d_isa::{DReg, Gpr, IntOp, MmxReg, MomReg, TraceBuilder, UsimdOp, Width};

    fn mom(kind: MemorySystemKind) -> Processor {
        Processor::new(ProcessorConfig::mom().with_memory(kind))
    }

    #[test]
    fn empty_trace() {
        let m = mom(MemorySystemKind::Ideal).run(&Trace::new()).unwrap();
        assert_eq!(m.instructions, 0);
        assert_eq!(m.cycles, 0);
    }

    #[test]
    fn independent_alu_ops_reach_issue_width() {
        // 400 independent int ops on a 4-wide int machine: IPC -> ~4.
        let mut tb = TraceBuilder::new();
        for i in 0..400 {
            tb.li(Gpr::new((i % 32) as u8), i as i64);
        }
        let m = mom(MemorySystemKind::Ideal).run(&tb.finish()).unwrap();
        assert!(m.ipc() > 3.0, "IPC {}", m.ipc());
        assert!(m.ipc() <= 4.1);
    }

    #[test]
    fn dependence_chain_serializes() {
        let mut tb = TraceBuilder::new();
        tb.li(Gpr::new(1), 0);
        for _ in 0..200 {
            tb.alui(IntOp::Add, Gpr::new(1), Gpr::new(1), 1);
        }
        let m = mom(MemorySystemKind::Ideal).run(&tb.finish()).unwrap();
        assert!(m.cycles >= 200, "a chain cannot beat 1 op/cycle");
        assert!(m.ipc() < 1.2);
    }

    #[test]
    fn mmx_simd_wider_than_mom_issue() {
        // 400 independent usimd ops: MMX has 4 FUs, MOM 1 (x4 lanes).
        let build = || {
            let mut tb = TraceBuilder::new();
            for i in 0..400u32 {
                let r = (i % 16) as u8;
                tb.usimd2(
                    UsimdOp::AddWrap(Width::B8),
                    MmxReg::new(r),
                    MmxReg::new(16 + (i % 8) as u8),
                    MmxReg::new(24 + (i % 8) as u8),
                );
            }
            tb.finish()
        };
        let mmx = Processor::new(ProcessorConfig::mmx().with_memory(MemorySystemKind::Ideal))
            .run(&build())
            .unwrap();
        let momp = mom(MemorySystemKind::Ideal).run(&build()).unwrap();
        assert!(mmx.cycles < momp.cycles, "MMX 4-wide µSIMD beats MOM 1-wide on scalar SIMD");
    }

    #[test]
    fn vector_op_occupies_lanes() {
        // One VL=16 vector op on 4 lanes: 4 cycles of FU occupancy.
        let mut tb = TraceBuilder::new();
        tb.set_vl(16);
        for _ in 0..100 {
            tb.vop2(UsimdOp::AddWrap(Width::B8), MomReg::new(0), MomReg::new(1), MomReg::new(2));
        }
        let m = mom(MemorySystemKind::Ideal).run(&tb.finish()).unwrap();
        // 100 x ceil(16/4) = 400 FU cycles on one unit.
        assert!(m.cycles >= 400);
        assert!(m.packed_ops >= 100 * 16 * 8);
    }

    #[test]
    fn strided_vload_slower_on_vector_cache_than_multibanked() {
        // Stride 136 B = 17 words: element k maps to bank k % 8, so the
        // multi-banked system sustains 4 grants/cycle while the vector
        // cache degrades to 1 element/cycle. Repeated bases keep the L2
        // warm after the first pass so port behaviour dominates.
        let build = || {
            let mut tb = TraceBuilder::new();
            tb.set_vl(16);
            tb.set_vs(136);
            let b = tb.li(Gpr::new(1), 0x1_0000);
            for k in 0..64u64 {
                tb.vload(MomReg::new((k % 8) as u8), b, 0x1_0000 + (k % 4));
            }
            tb.finish()
        };
        let vc = mom(MemorySystemKind::VectorCache).run(&build()).unwrap();
        let mb = mom(MemorySystemKind::MultiBanked).run(&build()).unwrap();
        let ideal = mom(MemorySystemKind::Ideal).run(&build()).unwrap();
        // Strided: VC serves 1 elem/cycle, MB up to 4 (different banks).
        assert!(vc.cycles > mb.cycles, "vc {} mb {}", vc.cycles, mb.cycles);
        assert!(mb.cycles > ideal.cycles);
        assert!(vc.effective_bandwidth() <= 1.01);
        assert!(mb.effective_bandwidth() > 1.5);
    }

    #[test]
    fn unit_stride_vload_wide_on_vector_cache() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(16);
        tb.set_vs(8);
        let b = tb.li(Gpr::new(1), 0x1_0000);
        for k in 0..64u64 {
            tb.vload(MomReg::new((k % 8) as u8), b, 0x1_0000 + 128 * k);
        }
        let m = mom(MemorySystemKind::VectorCache).run(&tb.finish()).unwrap();
        assert!((m.effective_bandwidth() - 4.0).abs() < 0.01);
    }

    #[test]
    fn dvload_requires_3d_register_file() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        let b = tb.li(Gpr::new(1), 0);
        tb.dvload(DReg::new(0), b, 0, 640, 16, false);
        let trace = tb.finish();
        let err = mom(MemorySystemKind::VectorCache).run(&trace).unwrap_err();
        assert!(matches!(err, SimError::No3dRegisterFile { .. }));
        assert!(mom(MemorySystemKind::VectorCache3d).run(&trace).is_ok());
    }

    #[test]
    fn dvload_bandwidth_beats_2d_strided() {
        // Same bytes delivered to MOM registers over 8 search windows:
        // 16 strided 2D loads per window vs one 3dvload + 16 dvmovs.
        // Several windows amortize the initial cold misses, exposing the
        // steady-state bandwidth difference.
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        tb.set_vs(640);
        let b = tb.li(Gpr::new(1), 0x1_0000);
        for blk in 0..8u64 {
            for k in 0..16u64 {
                tb.vload(MomReg::new((k % 8) as u8), b, 0x1_0000 + blk * 16 + k);
            }
        }
        let t2d = tb.finish();

        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        let b = tb.li(Gpr::new(1), 0x1_0000);
        for blk in 0..8u64 {
            tb.dvload(DReg::new(0), b, 0x1_0000 + blk * 16, 640, 3, false);
            for k in 0..16u8 {
                tb.dvmov(MomReg::new(k % 8), DReg::new(0), 1);
            }
        }
        let t3d = tb.finish();

        let m2d = mom(MemorySystemKind::VectorCache).run(&t2d).unwrap();
        let m3d = mom(MemorySystemKind::VectorCache3d).run(&t3d).unwrap();
        assert!(m3d.cycles < m2d.cycles, "3d {} vs 2d {}", m3d.cycles, m2d.cycles);
        assert!(m3d.l2_activity < m2d.l2_activity);
        assert!(m3d.effective_bandwidth() > m2d.effective_bandwidth());
    }

    #[test]
    fn l2_latency_sweep_hurts_2d_more_than_3d() {
        let build_2d = || {
            let mut tb = TraceBuilder::new();
            tb.set_vl(8);
            tb.set_vs(640);
            let b = tb.li(Gpr::new(1), 0x1_0000);
            for k in 0..128u64 {
                tb.vload(MomReg::new(0), b, 0x1_0000 + k);
                tb.vop2(UsimdOp::AbsDiffU(Width::B8), MomReg::new(2), MomReg::new(0), MomReg::new(1));
            }
            tb.finish()
        };
        let build_3d = || {
            let mut tb = TraceBuilder::new();
            tb.set_vl(8);
            let b = tb.li(Gpr::new(1), 0x1_0000);
            for blk in 0..2u64 {
                tb.dvload(DReg::new(0), b, 0x1_0000 + blk * 64, 640, 9, false);
                for _ in 0..64 {
                    tb.dvmov(MomReg::new(0), DReg::new(0), 1);
                    tb.vop2(
                        UsimdOp::AbsDiffU(Width::B8),
                        MomReg::new(2),
                        MomReg::new(0),
                        MomReg::new(1),
                    );
                }
            }
            tb.finish()
        };
        let t2 = build_2d();
        let t3 = build_3d();
        let p20_2d = mom(MemorySystemKind::VectorCache).run(&t2).unwrap();
        let p60_2d = Processor::new(
            ProcessorConfig::mom()
                .with_memory(MemorySystemKind::VectorCache)
                .with_l2_latency(60),
        )
        .run(&t2)
        .unwrap();
        let p20_3d = mom(MemorySystemKind::VectorCache3d).run(&t3).unwrap();
        let p60_3d = Processor::new(
            ProcessorConfig::mom()
                .with_memory(MemorySystemKind::VectorCache3d)
                .with_l2_latency(60),
        )
        .run(&t3)
        .unwrap();
        let slow_2d = p60_2d.cycles as f64 / p20_2d.cycles as f64;
        let slow_3d = p60_3d.cycles as f64 / p20_3d.cycles as f64;
        assert!(
            slow_3d < slow_2d,
            "3D must be more latency tolerant: {slow_3d:.3} vs {slow_2d:.3}"
        );
    }

    #[test]
    fn unknown_backend_is_a_sim_error() {
        let p = Processor::new(ProcessorConfig::mom().with_memory(crate::BackendId::new("bogus")));
        let err = p.run(&Trace::new()).unwrap_err();
        assert!(matches!(err, SimError::UnknownBackend { ref id } if id == "bogus"));
    }

    #[test]
    fn oversized_bank_count_is_a_sim_error() {
        // Satellite of the event refactor: >64 L1 banks used to shift the
        // conflict bitmask out of range; now it is a validation error.
        let mut cfg = ProcessorConfig::mmx().with_memory(MemorySystemKind::MultiBanked);
        cfg.banked.banks = 65;
        let err = Processor::new(cfg).run(&Trace::new()).unwrap_err();
        assert!(matches!(err, SimError::UnsupportedConfig { ref what } if what.contains("65")));
        // 64 banks exactly fills the mask and still simulates.
        let mut cfg = ProcessorConfig::mmx().with_memory(MemorySystemKind::MultiBanked);
        cfg.banked.banks = 64;
        let mut tb = TraceBuilder::new();
        let b = tb.li(Gpr::new(1), 0);
        for i in 0..64u64 {
            tb.load_scalar(Gpr::new((2 + i % 4) as u8), b, i * 8, 8);
        }
        let m = Processor::new(cfg).run(&tb.finish()).unwrap();
        assert_eq!(m.scalar_mem_instrs, 64);
    }

    #[test]
    fn dram_burst_backend_times_a_vector_trace() {
        // A registry-only backend drives the unmodified pipeline: large
        // strides thrash the row buffers, dense streams burst.
        let build = |stride: i64| {
            let mut tb = TraceBuilder::new();
            tb.set_vl(16);
            tb.set_vs(stride);
            let b = tb.li(Gpr::new(1), 0x1_0000);
            for k in 0..32u64 {
                tb.vload(MomReg::new((k % 8) as u8), b, 0x1_0000 + (k % 4));
            }
            tb.finish()
        };
        let dram = Processor::new(
            ProcessorConfig::mom().with_memory(crate::BackendId::new("dram-burst")),
        );
        let dense = dram.run(&build(8)).unwrap();
        let strided = dram.run(&build(8192)).unwrap();
        assert!(dense.dram_row_misses > 0, "cold rows must be activated");
        assert!(
            strided.dram_row_misses > dense.dram_row_misses,
            "row-set-sized strides must thrash the row buffers"
        );
        assert!(strided.cycles > dense.cycles);
        // 3D traces are rejected: the DRAM model has no 3D register file.
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        let b = tb.li(Gpr::new(1), 0);
        tb.dvload(DReg::new(0), b, 0, 640, 16, false);
        let err = dram.run(&tb.finish()).unwrap_err();
        assert!(matches!(err, SimError::No3dRegisterFile { .. }));
    }

    #[test]
    fn lsq_bounds_inflight_memory() {
        // 64 loads with a long-latency first load: the LSQ (32) bounds how
        // many can be in flight, but everything still completes.
        let mut tb = TraceBuilder::new();
        let b = tb.li(Gpr::new(1), 0);
        for i in 0..64u64 {
            tb.load_scalar(Gpr::new(2), b, 0x8_0000 + i * 4096, 4);
        }
        let m = mom(MemorySystemKind::VectorCache).run(&tb.finish()).unwrap();
        assert_eq!(m.scalar_mem_instrs, 64);
        assert_eq!(m.instructions, 65);
    }

    #[test]
    fn mmx_bank_conflicts_cost_cycles() {
        // 4 loads per "iteration" all mapping to bank 0 vs spread banks.
        let conflicting = {
            let mut tb = TraceBuilder::new();
            let b = tb.li(Gpr::new(1), 0);
            for i in 0..128u64 {
                tb.load_scalar(Gpr::new((2 + i % 4) as u8), b, (i % 4) * 64, 8);
            }
            tb.finish()
        };
        let spread = {
            let mut tb = TraceBuilder::new();
            let b = tb.li(Gpr::new(1), 0);
            for i in 0..128u64 {
                tb.load_scalar(Gpr::new((2 + i % 4) as u8), b, (i % 4) * 8, 8);
            }
            tb.finish()
        };
        let mmx = |t: &Trace| {
            Processor::new(ProcessorConfig::mmx().with_memory(MemorySystemKind::MultiBanked))
                .run(t)
                .unwrap()
        };
        let c = mmx(&conflicting);
        let s = mmx(&spread);
        assert!(c.cycles > s.cycles, "conflicts {} vs spread {}", c.cycles, s.cycles);
    }

    #[test]
    fn metrics_totals_are_consistent() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        tb.set_vs(640);
        let b = tb.li(Gpr::new(1), 0x1_0000);
        tb.vload(MomReg::new(0), b, 0x1_0000);
        tb.vstore(MomReg::new(0), b, 0x5_0000);
        let m = mom(MemorySystemKind::VectorCache).run(&tb.finish()).unwrap();
        assert_eq!(m.vec_mem_instrs, 2);
        assert_eq!(m.vec_words, 16); // 8 loaded + 8 stored
        assert_eq!(m.instructions, 5);
        assert!(m.l2_misses > 0);
    }

    #[test]
    fn zero_latency_l1_hits_wake_consumers_same_cycle() {
        // With `l1_latency = 0` (a public knob) a warm L1 hit completes in
        // its own issue cycle, and the age-ordered scan lets the younger
        // dependent issue that same cycle. The event-driven path must
        // splice such consumers into the in-flight ready scan instead of
        // deferring them a cycle through the wakeup heap.
        let mut cfg = ProcessorConfig::mom()
            .with_memory(MemorySystemKind::VectorCache)
            .with_warm_caches(true);
        cfg.hierarchy.l1_latency = 0;
        let mut tb = TraceBuilder::new();
        let b = tb.li(Gpr::new(1), 0x1000);
        for i in 0..20u64 {
            let d = Gpr::new((2 + i % 8) as u8);
            tb.load_scalar(d, b, 0x1000 + (i % 4) * 8, 8);
            tb.alui(IntOp::Add, Gpr::new(10 + (i % 4) as u8), d, 1);
        }
        let trace = tb.finish();
        let p = Processor::new(cfg);
        let new = p.run(&trace).unwrap();
        let old = p.run_legacy(&trace).unwrap();
        assert_eq!(new, old, "zero-latency loads must not delay their consumers");
    }

    #[test]
    fn units_peek_and_free_at_agree_with_acquire() {
        let mut u = Units::new(2);
        assert_eq!(u.free_at(), 0);
        assert!(u.peek(0));
        assert!(u.acquire(0, 3)); // unit 0 busy until 3
        assert!(u.peek(0), "second unit still free");
        assert!(u.acquire(0, 5)); // unit 1 busy until 5
        assert!(!u.peek(1));
        assert!(!u.acquire(1, 1), "acquire must agree with peek");
        assert_eq!(u.free_at(), 3, "earliest release is the next event");
        assert!(u.peek(3));
        assert!(u.acquire(3, 1));
        assert_eq!(u.free_at(), 4);
        // An empty pool never grants and never schedules an event.
        let mut empty = Units::new(0);
        assert_eq!(empty.free_at(), u64::MAX);
        assert!(!empty.peek(u64::MAX - 1));
        assert!(!empty.acquire(0, 1));
    }

    /// The full kernel x ISA-variant x backend matrix: the event-driven
    /// scheduler reproduces the legacy loop's metrics bit for bit on
    /// every real workload (reduced geometry) under every registered
    /// backend, in exactly the configurations the sweep engine uses.
    #[test]
    fn event_driven_matches_legacy_on_kernel_matrix() {
        use mom3d_kernels::{IsaVariant, Workload, WorkloadKind};
        for kind in WorkloadKind::ALL {
            for variant in [IsaVariant::Mmx, IsaVariant::Mom, IsaVariant::Mom3d] {
                let wl = Workload::build_small(kind, variant, 11)
                    .unwrap_or_else(|e| panic!("{kind} {variant}: build failed: {e}"));
                for entry in mom3d_mem::BackendRegistry::entries() {
                    let base = match variant {
                        IsaVariant::Mmx => ProcessorConfig::mmx(),
                        _ => ProcessorConfig::mom(),
                    };
                    let p = Processor::new(
                        base.with_memory(entry.backend_id()).with_warm_caches(true),
                    );
                    let new = p.run(wl.trace());
                    let old = p.run_legacy(wl.trace());
                    assert_eq!(
                        new, old,
                        "{kind} {variant} on {}: event-driven diverged from the legacy loop",
                        entry.id
                    );
                }
            }
        }
    }

    mod equivalence {
        //! Proptest equivalence of the event-driven scheduler against
        //! the legacy cycle-stepped oracle over random traces.

        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone, Copy)]
        enum Step {
            Alu(u8, u8, i8),
            Load(u8, u32),
            Store(u8, u32),
            Usimd(u8, u8),
            SetVl(u8),
            VLoad(u8, u32),
            VStore(u8, u32),
            DvLoad(u32, u8),
            DvMov(u8, i8),
            Branch(bool),
        }

        fn step_strategy() -> impl Strategy<Value = Step> {
            prop_oneof![
                (0u8..30, 0u8..30, any::<i8>()).prop_map(|(d, s, i)| Step::Alu(d, s, i)),
                (0u8..30, 0u32..0x8000).prop_map(|(d, a)| Step::Load(d, a)),
                (0u8..30, 0u32..0x8000).prop_map(|(s, a)| Step::Store(s, a)),
                (0u8..16, 0u8..16).prop_map(|(d, s)| Step::Usimd(d, s)),
                (1u8..=16).prop_map(Step::SetVl),
                (0u8..16, 0u32..0x8000).prop_map(|(d, a)| Step::VLoad(d, a)),
                (0u8..16, 0u32..0x8000).prop_map(|(s, a)| Step::VStore(s, a)),
                (0u32..0x8000, 1u8..=16).prop_map(|(a, w)| Step::DvLoad(a, w)),
                (0u8..16, -8i8..=8).prop_map(|(d, p)| Step::DvMov(d, p)),
                any::<bool>().prop_map(Step::Branch),
            ]
        }

        fn build(steps: &[Step]) -> Trace {
            let mut tb = TraceBuilder::new();
            tb.set_vl(8);
            tb.set_vs(64);
            let base = tb.li(Gpr::new(31), 0x10_0000);
            for s in steps {
                match *s {
                    Step::Alu(d, s, imm) => {
                        tb.alui(IntOp::Add, Gpr::new(d % 30), Gpr::new(s % 30), imm as i64);
                    }
                    Step::Load(d, a) => {
                        tb.load_scalar(Gpr::new(d % 30), base, 0x10_0000 + a as u64, 8);
                    }
                    Step::Store(s, a) => {
                        tb.store_scalar(Gpr::new(s % 30), base, 0x10_0000 + a as u64, 8);
                    }
                    Step::Usimd(d, s) => {
                        tb.usimd2(
                            UsimdOp::AddSatU(Width::B8),
                            MmxReg::new(d % 16),
                            MmxReg::new(s % 16),
                            MmxReg::new((s + 1) % 16),
                        );
                    }
                    Step::SetVl(v) => tb.set_vl(v),
                    Step::VLoad(d, a) => {
                        tb.vload(MomReg::new(d % 16), base, 0x10_0000 + a as u64);
                    }
                    Step::VStore(s, a) => {
                        tb.vstore(MomReg::new(s % 16), base, 0x10_0000 + a as u64);
                    }
                    Step::DvLoad(a, w) => {
                        tb.dvload(DReg::new(0), base, 0x10_0000 + a as u64, 64, w, false);
                    }
                    Step::DvMov(d, p) => {
                        tb.dvmov(MomReg::new(d % 16), DReg::new(0), p as i16);
                    }
                    Step::Branch(t) => tb.branch(Gpr::new(1), t),
                }
            }
            tb.finish()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(40))]

            /// On any well-formed trace, under both Table-2 processor
            /// shapes and every registered backend — zero-latency cache
            /// configurations included — the event-driven path
            /// reproduces the legacy oracle bit for bit, metrics and
            /// errors alike.
            #[test]
            fn event_driven_equals_legacy(
                steps in proptest::collection::vec(step_strategy(), 1..120),
                mmx_shape in any::<bool>(),
                zero_latency in any::<bool>(),
                warm in any::<bool>(),
            ) {
                let trace = build(&steps);
                let mut base = if mmx_shape {
                    ProcessorConfig::mmx()
                } else {
                    ProcessorConfig::mom()
                };
                base = base.with_warm_caches(warm);
                if zero_latency {
                    // Same-cycle completion paths: producers finish in
                    // their issue cycle.
                    base.hierarchy.l1_latency = 0;
                    base = base.with_l2_latency(0);
                }
                for entry in mom3d_mem::BackendRegistry::entries() {
                    let p = Processor::new(base.with_memory(entry.backend_id()));
                    let new = p.run(&trace);
                    let old = p.run_legacy(&trace);
                    prop_assert_eq!(new, old, "backend {}", entry.id);
                }
            }
        }
    }
}
