//! The cycle-stepped out-of-order pipeline model.

use crate::config::ProcessorConfig;
use crate::depgraph::DepGraph;
use crate::error::SimError;
use crate::memsys::MemorySystem;
use crate::metrics::Metrics;
use mom3d_isa::{ExecClass, Opcode, Trace};
use std::collections::VecDeque;

/// A pool of identical functional units tracked by busy-until cycle.
#[derive(Debug, Clone)]
struct Units {
    busy_until: Vec<u64>,
}

impl Units {
    fn new(n: usize) -> Self {
        Units { busy_until: vec![0; n] }
    }

    /// Reserves a free unit for `occupancy` cycles starting at `now`.
    fn acquire(&mut self, now: u64, occupancy: u32) -> bool {
        if let Some(u) = self.busy_until.iter_mut().find(|b| **b <= now) {
            *u = now + occupancy as u64;
            true
        } else {
            false
        }
    }
}

/// The out-of-order processor model.
///
/// See the crate docs for the modeled resources. One `Processor` is a
/// reusable configuration; [`Processor::run`] simulates one trace and
/// returns its [`Metrics`].
#[derive(Debug, Clone)]
pub struct Processor {
    config: ProcessorConfig,
}

impl Processor {
    /// Creates a processor with the given configuration.
    pub fn new(config: ProcessorConfig) -> Self {
        Processor { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// Simulates `trace` to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBackend`] if the configured memory
    /// backend id is not registered, [`SimError::No3dRegisterFile`] if
    /// the trace contains 3D memory instructions and the configured
    /// memory system lacks the 3D register file, or
    /// [`SimError::Malformed`] for memory opcodes without descriptors.
    pub fn run(&self, trace: &Trace) -> Result<Metrics, SimError> {
        let cfg = &self.config;
        let instrs = trace.instrs();
        let n = instrs.len();

        // Up-front validation, starting with the backend itself.
        let backend = mom3d_mem::BackendRegistry::get(cfg.memory.as_str())
            .ok_or_else(|| SimError::UnknownBackend { id: cfg.memory.as_str().to_string() })?;
        for (index, i) in instrs.iter().enumerate() {
            match i.opcode {
                Opcode::DvLoad | Opcode::DvMov if !backend.has_3d => {
                    return Err(SimError::No3dRegisterFile { index });
                }
                op if op.is_mem() && i.mem.is_none() => {
                    return Err(SimError::Malformed { index, what: "memory descriptor" });
                }
                _ => {}
            }
        }

        let deps = DepGraph::build(trace);
        let mut memsys = MemorySystem::new(cfg);
        if cfg.warm_caches {
            memsys.warm_from_trace(trace);
        }
        let mut metrics = Metrics::default();

        let mut done_at: Vec<u64> = vec![u64::MAX; n];
        // Pointer-register results are available right after rename/issue
        // (the renamed value is `ptr + Ps` or the `b`-flag constant), so
        // pointer-only consumers key off this earlier timestamp.
        let mut ptr_ready_at: Vec<u64> = vec![u64::MAX; n];
        let mut issued: Vec<bool> = vec![false; n];
        let mut window: VecDeque<u32> = VecDeque::with_capacity(cfg.window);
        let mut next_fetch = 0usize;
        let mut lsq_used = 0usize;

        let mut int_units = Units::new(cfg.int_units);
        let mut simd_units = Units::new(cfg.simd_units);
        let mut l1_ports = Units::new(cfg.l1_ports);
        let mut vec_port = Units::new(1);
        let mut vec_txn = Units::new(cfg.vec_outstanding.max(1));
        let mut mov3d_unit = Units::new(1);

        let mut now: u64 = 0;
        // Generous progress bound: every instruction finishes within a few
        // hundred cycles of being oldest, so exceeding this means a model
        // bug, not a slow workload.
        let cycle_bound = 2_000u64 * n as u64 + 1_000_000;

        while next_fetch < n || !window.is_empty() {
            // ---- commit (in order, up to commit_rate) ---------------------
            let mut committed = 0usize;
            while committed < cfg.commit_rate {
                match window.front() {
                    Some(&front) if issued[front as usize] && done_at[front as usize] <= now => {
                        let i = &instrs[front as usize];
                        if i.opcode.is_mem() {
                            lsq_used -= 1;
                        }
                        metrics.instructions += 1;
                        metrics.packed_ops += i.packed_ops();
                        window.pop_front();
                        committed += 1;
                    }
                    _ => break,
                }
            }

            // ---- issue (oldest first, per-class budgets) ------------------
            let mut int_budget = cfg.int_issue;
            let mut simd_budget = cfg.simd_issue;
            let mut mem_budget = cfg.mem_issue; // shared: scalar + vector mem
            let mut mov3d_budget = 1usize;
            let mut banks_used: u64 = 0; // L1 bank bitmask for this cycle

            for &wi in window.iter() {
                let idx = wi as usize;
                if issued[idx] {
                    continue;
                }
                if int_budget == 0 && simd_budget == 0 && mem_budget == 0 && mov3d_budget == 0 {
                    break;
                }
                let instr = &instrs[idx];
                let ready = deps.deps(idx).iter().all(|e| {
                    let d = e.producer as usize;
                    if e.ptr_only {
                        ptr_ready_at[d] <= now
                    } else {
                        done_at[d] <= now
                    }
                });
                if !ready {
                    continue; // operands not ready
                }
                match instr.opcode.class() {
                    ExecClass::Int => {
                        if int_budget == 0 || !int_units.acquire(now, 1) {
                            continue;
                        }
                        int_budget -= 1;
                        done_at[idx] = now + instr.opcode.base_latency() as u64;
                    }
                    ExecClass::Simd => {
                        if simd_budget == 0 {
                            continue;
                        }
                        let occupancy = if instr.opcode.is_vector() {
                            (instr.vl as usize).div_ceil(cfg.simd_lanes) as u32
                        } else {
                            1
                        };
                        if !simd_units.acquire(now, occupancy) {
                            continue;
                        }
                        simd_budget -= 1;
                        done_at[idx] =
                            now + (occupancy - 1) as u64 + instr.opcode.base_latency() as u64;
                    }
                    ExecClass::Mem => {
                        if mem_budget == 0 {
                            continue;
                        }
                        let mem = instr.mem.expect("validated above");
                        if cfg.l1_banked && !backend.is_ideal {
                            let bank = memsys.bank_of(mem.base);
                            if banks_used & (1 << bank) != 0 {
                                continue; // bank conflict: retry next cycle
                            }
                            banks_used |= 1 << bank;
                        }
                        if !l1_ports.acquire(now, 1) {
                            continue;
                        }
                        mem_budget -= 1;
                        let latency = memsys.scalar_access(&mem, instr.opcode.is_store());
                        metrics.scalar_mem_instrs += 1;
                        // Stores retire into the store buffer and drain in
                        // the background; only loads expose access latency.
                        done_at[idx] = if instr.opcode.is_store() {
                            now + 1
                        } else {
                            now + latency as u64
                        };
                    }
                    ExecClass::VecMem => {
                        if mem_budget == 0 {
                            continue;
                        }
                        // Probe both the port and a transaction buffer
                        // before paying for the access (the access mutates
                        // cache state, so it must not be speculated).
                        if vec_port.busy_until[0] > now
                            || !vec_txn.busy_until.iter().any(|&b| b <= now)
                        {
                            continue;
                        }
                        let mem = instr.mem.expect("validated above");
                        let is_3d = instr.opcode == Opcode::DvLoad;
                        let timing =
                            memsys.vector_access(&mem, instr.opcode.is_store(), is_3d);
                        let ok = vec_port.acquire(now, timing.occupancy);
                        debug_assert!(ok, "vector port probed free");
                        // The transaction buffer is held until the data
                        // returns, bounding latency overlap.
                        let ok = vec_txn.acquire(now, timing.occupancy + timing.latency);
                        debug_assert!(ok, "transaction buffer probed free");
                        mem_budget -= 1;
                        metrics.vec_mem_instrs += 1;
                        // Vector stores hold the port for their occupancy
                        // but complete without waiting on the L2 write.
                        done_at[idx] = if instr.opcode.is_store() {
                            now + timing.occupancy as u64
                        } else {
                            now + timing.occupancy as u64 + timing.latency as u64
                        };
                    }
                    ExecClass::Mov3d => {
                        if mov3d_budget == 0 {
                            continue;
                        }
                        // Four lanes move 4 x 64 bit per cycle.
                        let occupancy = (instr.vl as usize).div_ceil(4) as u32;
                        if !mov3d_unit.acquire(now, occupancy) {
                            continue;
                        }
                        mov3d_budget -= 1;
                        metrics.mov3d_instrs += 1;
                        metrics.mov3d_words += instr.vl as u64;
                        done_at[idx] =
                            now + (occupancy - 1) as u64 + instr.opcode.base_latency() as u64;
                    }
                }
                issued[idx] = true;
                ptr_ready_at[idx] = now + 1;
            }

            // ---- fetch (in order, bounded by window and LSQ) ---------------
            let mut fetched = 0usize;
            while fetched < cfg.fetch_rate && next_fetch < n && window.len() < cfg.window {
                let is_mem = instrs[next_fetch].opcode.is_mem();
                if is_mem && lsq_used == cfg.lsq {
                    break;
                }
                if is_mem {
                    lsq_used += 1;
                }
                window.push_back(next_fetch as u32);
                next_fetch += 1;
                fetched += 1;
            }

            now += 1;
            assert!(now < cycle_bound, "simulator failed to make progress (model bug)");
        }

        metrics.cycles = now;
        metrics.port_accesses = memsys.port_accesses;
        metrics.l2_activity = memsys.l2_activity;
        metrics.vec_words = memsys.vec_words;
        metrics.d3_writes = memsys.d3_writes;
        let b = memsys.backend_stats();
        metrics.dram_row_hits = b.row_hits;
        metrics.dram_row_misses = b.row_misses;
        let h = memsys.hierarchy().stats();
        metrics.l2_scalar_accesses = h.l2_scalar_accesses;
        metrics.l2_hits = h.l2_hits;
        metrics.l2_misses = h.l2_misses;
        metrics.l1_accesses = h.l1_accesses;
        metrics.coherence_invalidations = h.coherence_invalidations;
        Ok(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySystemKind;
    use mom3d_isa::{DReg, Gpr, IntOp, MmxReg, MomReg, TraceBuilder, UsimdOp, Width};

    fn mom(kind: MemorySystemKind) -> Processor {
        Processor::new(ProcessorConfig::mom().with_memory(kind))
    }

    #[test]
    fn empty_trace() {
        let m = mom(MemorySystemKind::Ideal).run(&Trace::new()).unwrap();
        assert_eq!(m.instructions, 0);
        assert_eq!(m.cycles, 0);
    }

    #[test]
    fn independent_alu_ops_reach_issue_width() {
        // 400 independent int ops on a 4-wide int machine: IPC -> ~4.
        let mut tb = TraceBuilder::new();
        for i in 0..400 {
            tb.li(Gpr::new((i % 32) as u8), i as i64);
        }
        let m = mom(MemorySystemKind::Ideal).run(&tb.finish()).unwrap();
        assert!(m.ipc() > 3.0, "IPC {}", m.ipc());
        assert!(m.ipc() <= 4.1);
    }

    #[test]
    fn dependence_chain_serializes() {
        let mut tb = TraceBuilder::new();
        tb.li(Gpr::new(1), 0);
        for _ in 0..200 {
            tb.alui(IntOp::Add, Gpr::new(1), Gpr::new(1), 1);
        }
        let m = mom(MemorySystemKind::Ideal).run(&tb.finish()).unwrap();
        assert!(m.cycles >= 200, "a chain cannot beat 1 op/cycle");
        assert!(m.ipc() < 1.2);
    }

    #[test]
    fn mmx_simd_wider_than_mom_issue() {
        // 400 independent usimd ops: MMX has 4 FUs, MOM 1 (x4 lanes).
        let build = || {
            let mut tb = TraceBuilder::new();
            for i in 0..400u32 {
                let r = (i % 16) as u8;
                tb.usimd2(
                    UsimdOp::AddWrap(Width::B8),
                    MmxReg::new(r),
                    MmxReg::new(16 + (i % 8) as u8),
                    MmxReg::new(24 + (i % 8) as u8),
                );
            }
            tb.finish()
        };
        let mmx = Processor::new(ProcessorConfig::mmx().with_memory(MemorySystemKind::Ideal))
            .run(&build())
            .unwrap();
        let momp = mom(MemorySystemKind::Ideal).run(&build()).unwrap();
        assert!(mmx.cycles < momp.cycles, "MMX 4-wide µSIMD beats MOM 1-wide on scalar SIMD");
    }

    #[test]
    fn vector_op_occupies_lanes() {
        // One VL=16 vector op on 4 lanes: 4 cycles of FU occupancy.
        let mut tb = TraceBuilder::new();
        tb.set_vl(16);
        for _ in 0..100 {
            tb.vop2(UsimdOp::AddWrap(Width::B8), MomReg::new(0), MomReg::new(1), MomReg::new(2));
        }
        let m = mom(MemorySystemKind::Ideal).run(&tb.finish()).unwrap();
        // 100 x ceil(16/4) = 400 FU cycles on one unit.
        assert!(m.cycles >= 400);
        assert!(m.packed_ops >= 100 * 16 * 8);
    }

    #[test]
    fn strided_vload_slower_on_vector_cache_than_multibanked() {
        // Stride 136 B = 17 words: element k maps to bank k % 8, so the
        // multi-banked system sustains 4 grants/cycle while the vector
        // cache degrades to 1 element/cycle. Repeated bases keep the L2
        // warm after the first pass so port behaviour dominates.
        let build = || {
            let mut tb = TraceBuilder::new();
            tb.set_vl(16);
            tb.set_vs(136);
            let b = tb.li(Gpr::new(1), 0x1_0000);
            for k in 0..64u64 {
                tb.vload(MomReg::new((k % 8) as u8), b, 0x1_0000 + (k % 4));
            }
            tb.finish()
        };
        let vc = mom(MemorySystemKind::VectorCache).run(&build()).unwrap();
        let mb = mom(MemorySystemKind::MultiBanked).run(&build()).unwrap();
        let ideal = mom(MemorySystemKind::Ideal).run(&build()).unwrap();
        // Strided: VC serves 1 elem/cycle, MB up to 4 (different banks).
        assert!(vc.cycles > mb.cycles, "vc {} mb {}", vc.cycles, mb.cycles);
        assert!(mb.cycles > ideal.cycles);
        assert!(vc.effective_bandwidth() <= 1.01);
        assert!(mb.effective_bandwidth() > 1.5);
    }

    #[test]
    fn unit_stride_vload_wide_on_vector_cache() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(16);
        tb.set_vs(8);
        let b = tb.li(Gpr::new(1), 0x1_0000);
        for k in 0..64u64 {
            tb.vload(MomReg::new((k % 8) as u8), b, 0x1_0000 + 128 * k);
        }
        let m = mom(MemorySystemKind::VectorCache).run(&tb.finish()).unwrap();
        assert!((m.effective_bandwidth() - 4.0).abs() < 0.01);
    }

    #[test]
    fn dvload_requires_3d_register_file() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        let b = tb.li(Gpr::new(1), 0);
        tb.dvload(DReg::new(0), b, 0, 640, 16, false);
        let trace = tb.finish();
        let err = mom(MemorySystemKind::VectorCache).run(&trace).unwrap_err();
        assert!(matches!(err, SimError::No3dRegisterFile { .. }));
        assert!(mom(MemorySystemKind::VectorCache3d).run(&trace).is_ok());
    }

    #[test]
    fn dvload_bandwidth_beats_2d_strided() {
        // Same bytes delivered to MOM registers over 8 search windows:
        // 16 strided 2D loads per window vs one 3dvload + 16 dvmovs.
        // Several windows amortize the initial cold misses, exposing the
        // steady-state bandwidth difference.
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        tb.set_vs(640);
        let b = tb.li(Gpr::new(1), 0x1_0000);
        for blk in 0..8u64 {
            for k in 0..16u64 {
                tb.vload(MomReg::new((k % 8) as u8), b, 0x1_0000 + blk * 16 + k);
            }
        }
        let t2d = tb.finish();

        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        let b = tb.li(Gpr::new(1), 0x1_0000);
        for blk in 0..8u64 {
            tb.dvload(DReg::new(0), b, 0x1_0000 + blk * 16, 640, 3, false);
            for k in 0..16u8 {
                tb.dvmov(MomReg::new(k % 8), DReg::new(0), 1);
            }
        }
        let t3d = tb.finish();

        let m2d = mom(MemorySystemKind::VectorCache).run(&t2d).unwrap();
        let m3d = mom(MemorySystemKind::VectorCache3d).run(&t3d).unwrap();
        assert!(m3d.cycles < m2d.cycles, "3d {} vs 2d {}", m3d.cycles, m2d.cycles);
        assert!(m3d.l2_activity < m2d.l2_activity);
        assert!(m3d.effective_bandwidth() > m2d.effective_bandwidth());
    }

    #[test]
    fn l2_latency_sweep_hurts_2d_more_than_3d() {
        let build_2d = || {
            let mut tb = TraceBuilder::new();
            tb.set_vl(8);
            tb.set_vs(640);
            let b = tb.li(Gpr::new(1), 0x1_0000);
            for k in 0..128u64 {
                tb.vload(MomReg::new(0), b, 0x1_0000 + k);
                tb.vop2(UsimdOp::AbsDiffU(Width::B8), MomReg::new(2), MomReg::new(0), MomReg::new(1));
            }
            tb.finish()
        };
        let build_3d = || {
            let mut tb = TraceBuilder::new();
            tb.set_vl(8);
            let b = tb.li(Gpr::new(1), 0x1_0000);
            for blk in 0..2u64 {
                tb.dvload(DReg::new(0), b, 0x1_0000 + blk * 64, 640, 9, false);
                for _ in 0..64 {
                    tb.dvmov(MomReg::new(0), DReg::new(0), 1);
                    tb.vop2(
                        UsimdOp::AbsDiffU(Width::B8),
                        MomReg::new(2),
                        MomReg::new(0),
                        MomReg::new(1),
                    );
                }
            }
            tb.finish()
        };
        let t2 = build_2d();
        let t3 = build_3d();
        let p20_2d = mom(MemorySystemKind::VectorCache).run(&t2).unwrap();
        let p60_2d = Processor::new(
            ProcessorConfig::mom()
                .with_memory(MemorySystemKind::VectorCache)
                .with_l2_latency(60),
        )
        .run(&t2)
        .unwrap();
        let p20_3d = mom(MemorySystemKind::VectorCache3d).run(&t3).unwrap();
        let p60_3d = Processor::new(
            ProcessorConfig::mom()
                .with_memory(MemorySystemKind::VectorCache3d)
                .with_l2_latency(60),
        )
        .run(&t3)
        .unwrap();
        let slow_2d = p60_2d.cycles as f64 / p20_2d.cycles as f64;
        let slow_3d = p60_3d.cycles as f64 / p20_3d.cycles as f64;
        assert!(
            slow_3d < slow_2d,
            "3D must be more latency tolerant: {slow_3d:.3} vs {slow_2d:.3}"
        );
    }

    #[test]
    fn unknown_backend_is_a_sim_error() {
        let p = Processor::new(ProcessorConfig::mom().with_memory(crate::BackendId::new("bogus")));
        let err = p.run(&Trace::new()).unwrap_err();
        assert!(matches!(err, SimError::UnknownBackend { ref id } if id == "bogus"));
    }

    #[test]
    fn dram_burst_backend_times_a_vector_trace() {
        // A registry-only backend drives the unmodified pipeline: large
        // strides thrash the row buffers, dense streams burst.
        let build = |stride: i64| {
            let mut tb = TraceBuilder::new();
            tb.set_vl(16);
            tb.set_vs(stride);
            let b = tb.li(Gpr::new(1), 0x1_0000);
            for k in 0..32u64 {
                tb.vload(MomReg::new((k % 8) as u8), b, 0x1_0000 + (k % 4));
            }
            tb.finish()
        };
        let dram = Processor::new(
            ProcessorConfig::mom().with_memory(crate::BackendId::new("dram-burst")),
        );
        let dense = dram.run(&build(8)).unwrap();
        let strided = dram.run(&build(8192)).unwrap();
        assert!(dense.dram_row_misses > 0, "cold rows must be activated");
        assert!(
            strided.dram_row_misses > dense.dram_row_misses,
            "row-set-sized strides must thrash the row buffers"
        );
        assert!(strided.cycles > dense.cycles);
        // 3D traces are rejected: the DRAM model has no 3D register file.
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        let b = tb.li(Gpr::new(1), 0);
        tb.dvload(DReg::new(0), b, 0, 640, 16, false);
        let err = dram.run(&tb.finish()).unwrap_err();
        assert!(matches!(err, SimError::No3dRegisterFile { .. }));
    }

    #[test]
    fn lsq_bounds_inflight_memory() {
        // 64 loads with a long-latency first load: the LSQ (32) bounds how
        // many can be in flight, but everything still completes.
        let mut tb = TraceBuilder::new();
        let b = tb.li(Gpr::new(1), 0);
        for i in 0..64u64 {
            tb.load_scalar(Gpr::new(2), b, 0x8_0000 + i * 4096, 4);
        }
        let m = mom(MemorySystemKind::VectorCache).run(&tb.finish()).unwrap();
        assert_eq!(m.scalar_mem_instrs, 64);
        assert_eq!(m.instructions, 65);
    }

    #[test]
    fn mmx_bank_conflicts_cost_cycles() {
        // 4 loads per "iteration" all mapping to bank 0 vs spread banks.
        let conflicting = {
            let mut tb = TraceBuilder::new();
            let b = tb.li(Gpr::new(1), 0);
            for i in 0..128u64 {
                tb.load_scalar(Gpr::new((2 + i % 4) as u8), b, (i % 4) * 64, 8);
            }
            tb.finish()
        };
        let spread = {
            let mut tb = TraceBuilder::new();
            let b = tb.li(Gpr::new(1), 0);
            for i in 0..128u64 {
                tb.load_scalar(Gpr::new((2 + i % 4) as u8), b, (i % 4) * 8, 8);
            }
            tb.finish()
        };
        let mmx = |t: &Trace| {
            Processor::new(ProcessorConfig::mmx().with_memory(MemorySystemKind::MultiBanked))
                .run(t)
                .unwrap()
        };
        let c = mmx(&conflicting);
        let s = mmx(&spread);
        assert!(c.cycles > s.cycles, "conflicts {} vs spread {}", c.cycles, s.cycles);
    }

    #[test]
    fn metrics_totals_are_consistent() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        tb.set_vs(640);
        let b = tb.li(Gpr::new(1), 0x1_0000);
        tb.vload(MomReg::new(0), b, 0x1_0000);
        tb.vstore(MomReg::new(0), b, 0x5_0000);
        let m = mom(MemorySystemKind::VectorCache).run(&tb.finish()).unwrap();
        assert_eq!(m.vec_mem_instrs, 2);
        assert_eq!(m.vec_words, 16); // 8 loaded + 8 stored
        assert_eq!(m.instructions, 5);
        assert!(m.l2_misses > 0);
    }
}
