//! The memory-system adapter: routes accesses to the hierarchy and the
//! port schedulers, and accumulates bandwidth/activity counters.

use crate::config::ProcessorConfig;
use mom3d_isa::MemAccess;
use mom3d_mem::{
    BackendId, BackendRegistry, BackendStats, BankedConfig, LineSet, MemHierarchy,
    VectorMemoryBackend,
};

/// Extra cycles per additional outstanding L2 miss beyond the first
/// (misses to main memory are pipelined, not serialized).
const MISS_PIPELINE_CYCLES: u32 = 8;

/// Timing of one memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOpTiming {
    /// Cycles the issuing port is occupied.
    pub occupancy: u32,
    /// Cycles from issue until the data is available (added on top of
    /// the occupancy).
    pub latency: u32,
}

/// The vector/scalar memory system of one simulation run.
///
/// Port scheduling is delegated to the configured
/// [`VectorMemoryBackend`]; the hierarchy (tag lookups, hit/miss
/// accounting, coherence) and the bandwidth counters are shared by all
/// backends.
#[derive(Debug)]
pub struct MemorySystem {
    backend: Box<dyn VectorMemoryBackend>,
    /// Cached [`VectorMemoryBackend::is_ideal`] (checked on every
    /// access).
    ideal: bool,
    hierarchy: MemHierarchy,
    banked: BankedConfig,
    /// Vector-port grant cycles (Figure 6 denominator).
    pub port_accesses: u64,
    /// Energy-relevant vector-side L2 accesses (Table 4).
    pub l2_activity: u64,
    /// 64-bit words moved by vector memory instructions (Figures 6/7).
    pub vec_words: u64,
    /// 3D-register-file element writes performed by `3dvload`s (one lane
    /// write per fetched element) — the Figure 11 3D-RF energy input.
    pub d3_writes: u64,
    /// Scratch block list, reused across accesses so the per-instruction
    /// path does not allocate in steady state.
    blocks_buf: Vec<(u64, u32)>,
    /// Scratch line deduplicator, reused for the same reason.
    line_set: LineSet,
}

impl MemorySystem {
    /// Builds the memory system for a processor configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.memory` names a backend that is not registered
    /// ([`crate::Processor::run`] checks this first and returns
    /// [`crate::SimError::UnknownBackend`] instead).
    pub fn new(config: &ProcessorConfig) -> Self {
        let backend = BackendRegistry::build(config.memory, &config.backend_params())
            .unwrap_or_else(|| {
                panic!("memory backend {:?} is not registered", config.memory.as_str())
            });
        MemorySystem {
            ideal: backend.is_ideal(),
            backend,
            hierarchy: MemHierarchy::new(config.hierarchy),
            banked: config.banked,
            port_accesses: 0,
            l2_activity: 0,
            vec_words: 0,
            d3_writes: 0,
            blocks_buf: Vec::new(),
            line_set: LineSet::new(),
        }
    }

    /// The configured backend's id.
    pub fn backend_id(&self) -> BackendId {
        self.backend.id()
    }

    /// Backend-specific counters (e.g. DRAM row-buffer hits/misses).
    pub fn backend_stats(&self) -> BackendStats {
        self.backend.stats()
    }

    /// Read-only view of the hierarchy (for stats extraction).
    pub fn hierarchy(&self) -> &MemHierarchy {
        &self.hierarchy
    }

    /// Bank index of a scalar address (for L1 bank-conflict modelling).
    pub fn bank_of(&self, addr: u64) -> usize {
        self.banked.bank_of(addr)
    }

    /// Pre-touches every line referenced by `trace` (both cache levels),
    /// then clears the hierarchy statistics, so a subsequent simulation
    /// measures steady-state hit behaviour.
    pub fn warm_from_trace(&mut self, trace: &mom3d_isa::Trace) {
        if self.ideal {
            return;
        }
        for instr in trace.iter() {
            let Some(mem) = &instr.mem else { continue };
            match instr.opcode.class() {
                mom3d_isa::ExecClass::Mem => {
                    self.hierarchy.scalar_access(mem.base, mem.elem_bytes, instr.opcode.is_store());
                }
                mom3d_isa::ExecClass::VecMem => {
                    self.blocks_buf.clear();
                    self.blocks_buf.extend(mem.blocks());
                    let line_bytes = self.hierarchy.config().l2.line_bytes as u64;
                    self.line_set.collect(&self.blocks_buf, line_bytes);
                    for &line in self.line_set.lines() {
                        self.hierarchy.vector_line_access(line, instr.opcode.is_store());
                    }
                }
                _ => {}
            }
        }
        self.hierarchy.reset_stats();
    }

    /// Performs a scalar or µSIMD access; returns its latency.
    pub fn scalar_access(&mut self, mem: &MemAccess, is_write: bool) -> u32 {
        if self.ideal {
            return 1;
        }
        self.hierarchy.scalar_access(mem.base, mem.elem_bytes, is_write)
    }

    /// Performs a vector memory access (2D load/store or `3dvload`);
    /// returns its port occupancy and completion latency, and updates
    /// the bandwidth/activity counters.
    pub fn vector_access(&mut self, mem: &MemAccess, is_store: bool, is_3d: bool) -> MemOpTiming {
        if self.ideal {
            self.vec_words += mem.total_bytes().div_ceil(8);
            return MemOpTiming { occupancy: 1, latency: 1 };
        }
        self.blocks_buf.clear();
        self.blocks_buf.extend(mem.blocks());

        // Tag lookups: one per distinct L2 line touched.
        let line_bytes = self.hierarchy.config().l2.line_bytes as u64;
        self.line_set.collect(&self.blocks_buf, line_bytes);
        let mut misses = 0u32;
        for &line in self.line_set.lines() {
            if !self.hierarchy.vector_line_access(line, is_store).hit {
                misses += 1;
            }
        }

        // Port scheduling: who wins how many words per cycle.
        let schedule = self.backend.schedule(&self.blocks_buf, is_3d);
        self.port_accesses += schedule.port_cycles as u64;
        self.l2_activity += schedule.cache_accesses;
        self.vec_words += schedule.words;
        if is_3d {
            self.d3_writes += mem.count as u64;
        }

        let hierarchy = self.hierarchy.config();
        let miss_penalty = if misses > 0 {
            hierarchy.mem_latency + (misses - 1) * MISS_PIPELINE_CYCLES
        } else {
            0
        };
        MemOpTiming {
            occupancy: schedule.port_cycles,
            latency: hierarchy.l2_latency + miss_penalty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MemorySystemKind, ProcessorConfig};

    fn system(kind: MemorySystemKind) -> MemorySystem {
        MemorySystem::new(&ProcessorConfig::mom().with_memory(kind))
    }

    #[test]
    fn ideal_is_flat() {
        let mut s = system(MemorySystemKind::Ideal);
        let m = MemAccess::strided2d(0x1000, 640, 8);
        let t = s.vector_access(&m, false, false);
        assert_eq!(t, MemOpTiming { occupancy: 1, latency: 1 });
        assert_eq!(s.vec_words, 8);
        assert_eq!(s.l2_activity, 0);
    }

    #[test]
    fn vector_cache_strided_costs_vl_cycles() {
        let mut s = system(MemorySystemKind::VectorCache);
        let m = MemAccess::strided2d(0x1000, 640, 8);
        let t = s.vector_access(&m, false, false);
        assert_eq!(t.occupancy, 8, "one element per cycle for non-unit stride");
        // Cold: 8 distinct lines missed.
        assert_eq!(t.latency, 20 + 100 + 7 * MISS_PIPELINE_CYCLES);
        // Warm: same access hits.
        let t = s.vector_access(&m, false, false);
        assert_eq!(t.latency, 20);
    }

    #[test]
    fn vector_cache_unit_stride_is_wide() {
        let mut s = system(MemorySystemKind::VectorCache);
        let m = MemAccess::strided2d(0x1000, 8, 16);
        let t = s.vector_access(&m, false, false);
        assert_eq!(t.occupancy, 4); // 16 words / 4-wide port
        assert_eq!(s.port_accesses, 4);
        assert_eq!(s.vec_words, 16);
    }

    #[test]
    fn multibanked_parallel_banks() {
        let mut s = system(MemorySystemKind::MultiBanked);
        let m = MemAccess::strided2d(0x1000, 8, 16);
        let t = s.vector_access(&m, false, false);
        assert_eq!(t.occupancy, 4); // 4 ports x 8 banks, unit stride
        assert_eq!(s.l2_activity, 16, "each element is a bank access");
    }

    #[test]
    fn multibanked_conflicts() {
        let mut s = system(MemorySystemKind::MultiBanked);
        // Stride 64 B = bank 0 every time.
        let m = MemAccess::strided2d(0, 64, 8);
        let t = s.vector_access(&m, false, false);
        assert_eq!(t.occupancy, 8);
    }

    #[test]
    fn dvload_uses_wide_path() {
        let mut s = system(MemorySystemKind::VectorCache3d);
        let m = MemAccess::strided3d(0x1000, 640, 16, 16);
        let t = s.vector_access(&m, false, true);
        assert_eq!(t.occupancy, 16, "one 128-byte element per cycle");
        assert_eq!(s.vec_words, 256);
        assert_eq!(s.l2_activity, 16);
        // Effective bandwidth of this access: 16 words per access.
        assert_eq!(s.vec_words / s.port_accesses, 16);
    }

    #[test]
    fn l2_latency_flows_through() {
        let mut s = MemorySystem::new(
            &ProcessorConfig::mom()
                .with_memory(MemorySystemKind::VectorCache)
                .with_l2_latency(60),
        );
        let m = MemAccess::strided2d(0x1000, 640, 4);
        s.vector_access(&m, false, false); // warm up
        let t = s.vector_access(&m, false, false);
        assert_eq!(t.latency, 60);
    }

    #[test]
    fn dram_burst_backend_runs_through_the_adapter() {
        let mut s = MemorySystem::new(
            &ProcessorConfig::mom().with_memory(BackendId::new("dram-burst")),
        );
        assert_eq!(s.backend_id().as_str(), "dram-burst");
        let m = MemAccess::strided2d(0x1000, 8, 16);
        // Cold: 4 bursts of 4 words + one row activate (default 6 cy).
        let t = s.vector_access(&m, false, false);
        assert_eq!(t.occupancy, 4 + 6);
        assert_eq!(s.backend_stats().row_misses, 1);
        // The row stays open across instructions: burst rate.
        let t = s.vector_access(&m, false, false);
        assert_eq!(t.occupancy, 4);
        assert_eq!(s.vec_words, 32);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unknown_backend_panics_with_clear_message() {
        MemorySystem::new(&ProcessorConfig::mom().with_memory(BackendId::new("no-such")));
    }

    #[test]
    fn scalar_goes_through_l1() {
        let mut s = system(MemorySystemKind::VectorCache);
        let m = MemAccess::scalar(0x500, 4);
        let cold = s.scalar_access(&m, false);
        assert!(cold > 100);
        let warm = s.scalar_access(&m, false);
        assert_eq!(warm, 1);
    }
}
