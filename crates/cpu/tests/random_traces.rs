//! Randomized robustness tests of the timing simulator: arbitrary
//! well-formed traces must simulate to completion with conserved
//! instruction counts on every memory system.

use mom3d_cpu::{MemorySystemKind, Processor, ProcessorConfig};
use mom3d_isa::{DReg, Gpr, IntOp, MmxReg, MomReg, TraceBuilder, UsimdOp, Width};
use proptest::prelude::*;

/// One random instruction-emission step.
#[derive(Debug, Clone, Copy)]
enum Step {
    Alu(u8, u8, i8),
    Load(u8, u32),
    Store(u8, u32),
    Usimd(u8, u8),
    SetVl(u8),
    VLoad(u8, u32),
    VStore(u8, u32),
    DvLoad(u32, u8),
    DvMov(u8, i8),
    Branch(bool),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..30, 0u8..30, any::<i8>()).prop_map(|(d, s, i)| Step::Alu(d, s, i)),
        (0u8..30, 0u32..0x8000).prop_map(|(d, a)| Step::Load(d, a)),
        (0u8..30, 0u32..0x8000).prop_map(|(s, a)| Step::Store(s, a)),
        (0u8..16, 0u8..16).prop_map(|(d, s)| Step::Usimd(d, s)),
        (1u8..=16).prop_map(Step::SetVl),
        (0u8..16, 0u32..0x8000).prop_map(|(d, a)| Step::VLoad(d, a)),
        (0u8..16, 0u32..0x8000).prop_map(|(s, a)| Step::VStore(s, a)),
        (0u32..0x8000, 1u8..=16).prop_map(|(a, w)| Step::DvLoad(a, w)),
        (0u8..16, -8i8..=8).prop_map(|(d, p)| Step::DvMov(d, p)),
        any::<bool>().prop_map(Step::Branch),
    ]
}

fn build(steps: &[Step]) -> mom3d_isa::Trace {
    let mut tb = TraceBuilder::new();
    tb.set_vl(8);
    tb.set_vs(64);
    let base = tb.li(Gpr::new(31), 0x10_0000);
    for s in steps {
        match *s {
            Step::Alu(d, s, imm) => {
                tb.alui(IntOp::Add, Gpr::new(d % 30), Gpr::new(s % 30), imm as i64);
            }
            Step::Load(d, a) => {
                tb.load_scalar(Gpr::new(d % 30), base, 0x10_0000 + a as u64, 8);
            }
            Step::Store(s, a) => {
                tb.store_scalar(Gpr::new(s % 30), base, 0x10_0000 + a as u64, 8);
            }
            Step::Usimd(d, s) => {
                tb.usimd2(
                    UsimdOp::AddSatU(Width::B8),
                    MmxReg::new(d % 16),
                    MmxReg::new(s % 16),
                    MmxReg::new((s + 1) % 16),
                );
            }
            Step::SetVl(v) => tb.set_vl(v),
            Step::VLoad(d, a) => {
                tb.vload(MomReg::new(d % 16), base, 0x10_0000 + a as u64);
            }
            Step::VStore(s, a) => {
                tb.vstore(MomReg::new(s % 16), base, 0x10_0000 + a as u64);
            }
            Step::DvLoad(a, w) => {
                tb.dvload(DReg::new(0), base, 0x10_0000 + a as u64, 64, w, false);
            }
            Step::DvMov(d, p) => {
                tb.dvmov(MomReg::new(d % 16), DReg::new(0), p as i16);
            }
            Step::Branch(t) => tb.branch(Gpr::new(1), t),
        }
    }
    tb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any well-formed trace simulates to completion on every memory
    /// system, committing each instruction exactly once.
    #[test]
    fn random_traces_complete(steps in proptest::collection::vec(step_strategy(), 1..120)) {
        let trace = build(&steps);
        for mem in [
            MemorySystemKind::Ideal,
            MemorySystemKind::MultiBanked,
            MemorySystemKind::VectorCache,
            MemorySystemKind::VectorCache3d,
        ] {
            let cfg = ProcessorConfig::mom().with_memory(mem);
            let has_3d = trace.iter().any(|i| {
                matches!(i.opcode, mom3d_isa::Opcode::DvLoad | mom3d_isa::Opcode::DvMov)
            });
            match Processor::new(cfg).run(&trace) {
                Ok(m) => {
                    prop_assert_eq!(m.instructions, trace.len() as u64, "{:?}", mem);
                    prop_assert!(m.cycles > 0);
                    prop_assert!(m.ipc() <= 8.0 + 1e-9);
                }
                Err(e) => {
                    // The only legal failure: 3D instructions without a
                    // 3D register file.
                    prop_assert!(has_3d && !mem.has_3d(), "unexpected error: {e} on {mem:?}");
                }
            }
        }
    }

    /// Cycle counts are deterministic.
    #[test]
    fn simulation_is_deterministic(steps in proptest::collection::vec(step_strategy(), 1..80)) {
        let trace = build(&steps);
        let p = Processor::new(
            ProcessorConfig::mom().with_memory(MemorySystemKind::VectorCache3d),
        );
        let a = p.run(&trace).expect("runs");
        let b = p.run(&trace).expect("runs");
        prop_assert_eq!(a, b);
    }
}
