//! Verification digests: a streaming 64-bit FNV-1a hasher.
//!
//! The workload-image cache (`mom3d-kernels`/`mom3d-bench`) persists
//! built-and-verified workloads across binary invocations. A cached
//! image must never produce a wrong answer, so every image carries two
//! fingerprints computed with this hasher:
//!
//! * a **payload checksum** over the serialized bytes (catches
//!   truncation and bit rot), and
//! * a **verification digest** over the emulator's actual output
//!   regions at verify time (ties the image to a trace that really
//!   produced the scalar reference's outputs — see
//!   `Workload::verify_digested` in `mom3d-kernels`).
//!
//! FNV-1a is used because it is tiny, dependency-free, byte-order
//! stable and fast on short inputs; it is an integrity check against
//! accidental corruption, not a cryptographic MAC.

/// Streaming 64-bit FNV-1a hasher.
///
/// ```
/// use mom3d_emu::Fnv64;
///
/// let mut d = Fnv64::new();
/// d.write(b"foobar");
/// assert_eq!(d.finish(), 0x85944171f73967e8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub const fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order (so digests are
    /// identical across host endianness).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest of everything written so far (the hasher can keep
    /// absorbing afterwards).
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot digest of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut d = Fnv64::new();
    d.write(bytes);
    d.finish()
}

/// Fast bulk checksum: an FNV-style multiply/xor chain over 8-byte
/// little-endian words (the tail is zero-padded, and the total length
/// is folded in last so paddings cannot collide). **Not** standard
/// FNV-1a — eight bytes per multiply instead of one, which makes it
/// ~8× faster on the megabyte-scale payloads of workload images while
/// keeping the same avalanche-by-multiplication error detection.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(FNV_PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(FNV_PRIME)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv1a_vectors() {
        // Reference vectors from the FNV specification.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut d = Fnv64::new();
        d.write(b"foo");
        d.write(b"bar");
        assert_eq!(d.finish(), fnv64(b"foobar"));
    }

    #[test]
    fn write_u64_is_little_endian() {
        let mut a = Fnv64::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv64::new();
        b.write(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = fnv64(b"workload image payload");
        let mut flipped = b"workload image payload".to_vec();
        flipped[3] ^= 0x10;
        assert_ne!(base, fnv64(&flipped));
    }

    #[test]
    fn checksum64_detects_flips_truncation_and_padding() {
        let data: Vec<u8> = (0..1021u32).map(|i| (i * 7) as u8).collect();
        let base = checksum64(&data);
        assert_eq!(base, checksum64(&data), "deterministic");
        for i in [0, 7, 8, 500, 1020] {
            let mut flipped = data.clone();
            flipped[i] ^= 0x01;
            assert_ne!(base, checksum64(&flipped), "flip at {i}");
        }
        assert_ne!(base, checksum64(&data[..1020]), "truncation");
        // Zero-padding the tail to a full word must not collide (the
        // length fold distinguishes them).
        let mut padded = data.clone();
        padded.extend_from_slice(&[0, 0, 0]);
        assert_ne!(base, checksum64(&padded));
        assert_ne!(checksum64(b""), checksum64(&[0u8; 8]));
    }
}
