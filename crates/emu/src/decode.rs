//! Trace pre-decode: the SoA form the trace-specializing executor runs.
//!
//! The interpreter in `exec.rs` re-derives everything per instruction:
//! it matches on the opcode, walks the operand lists collecting values
//! into freshly allocated `Vec`s, and re-resolves the µSIMD sub-op for
//! every element. Decoding hoists all of that to one pass over the
//! trace: each instruction becomes a compact [`OpRec`] — a handler-table
//! index, packed register indices, an element-function pointer resolved
//! from the sub-op, the captured VL, and a side-table index for the
//! memory descriptor — and the executor (`trace_exec.rs`) then runs the
//! records through a flat function-pointer table with zero allocation.
//!
//! Run boundaries: straight-line runs end at control flow (`Branch`) and
//! at vector-state changes (`SetVl`/`SetVs`), the points where the
//! architectural registers the vector checks compare against can move.
//! Within a run, adjacent scalar ALU records are fused into one
//! dispatch ([`K_INT_PAIR`]).
//!
//! Error parity with the interpreter is part of the decode contract:
//! statically malformed scalar instructions become [`K_FAULT`] records
//! that raise the interpreter's exact `Malformed` error *when reached*
//! (earlier instructions must still execute), and vector records keep
//! sentinel operand slots so their handlers re-check in the
//! interpreter's exact order (VL, then descriptor, then VS, then
//! operands).

use mom3d_isa::{Instruction, IntOp, MemAccess, Opcode, Reg, ReduceOp, Trace, UsimdOp, Width};
use mom3d_simd as simd;

/// Per-element function resolved at decode time: `(a, b, imm) -> result`.
/// Covers scalar ALU ops, µSIMD ops and MOM vector compute.
pub(crate) type ElemFn = fn(u64, u64, i64) -> u64;

/// Per-element reduction resolved at decode time: `(a, b) -> partial sum`.
pub(crate) type ReduceFn = fn(u64, u64) -> i128;

/// Sentinel for an absent register operand (checked by vector handlers
/// in interpreter order).
pub(crate) const NO_REG: u8 = u8::MAX;
/// Sentinel for an absent memory descriptor.
pub(crate) const NO_MEM: u32 = u32::MAX;

// Handler-table indices (see `trace_exec::HANDLERS`, same order).
pub(crate) const K_INT: u8 = 0;
pub(crate) const K_INT_PAIR: u8 = 1;
pub(crate) const K_BRANCH: u8 = 2;
pub(crate) const K_LOAD_SCALAR: u8 = 3;
pub(crate) const K_STORE_SCALAR: u8 = 4;
pub(crate) const K_LOAD_MMX: u8 = 5;
pub(crate) const K_STORE_MMX: u8 = 6;
pub(crate) const K_USIMD: u8 = 7;
pub(crate) const K_SET_VL: u8 = 8;
pub(crate) const K_SET_VS: u8 = 9;
pub(crate) const K_VLOAD: u8 = 10;
pub(crate) const K_VSTORE: u8 = 11;
pub(crate) const K_VCOMPUTE: u8 = 12;
pub(crate) const K_VREDUCE: u8 = 13;
pub(crate) const K_READ_ACC: u8 = 14;
pub(crate) const K_DVLOAD: u8 = 15;
pub(crate) const K_DVMOV: u8 = 16;
pub(crate) const K_FAULT: u8 = 17;
pub(crate) const KIND_COUNT: usize = 18;

// Scalar-ALU operand classes (resolved from the interpreter's
// `exec_int` source walk: GPR/MMX/ACC read their register, any other
// register class contributes zero, and a missing second source falls
// back to the immediate).
pub(crate) const SRC_GPR: u8 = 0;
pub(crate) const SRC_MMX: u8 = 1;
pub(crate) const SRC_ACC: u8 = 2;
pub(crate) const SRC_ZERO: u8 = 3;
pub(crate) const SRC_IMM: u8 = 4;
pub(crate) const DST_GPR: u8 = 0;
pub(crate) const DST_MMX: u8 = 1;
pub(crate) const DST_ACC: u8 = 2;

/// One pre-decoded instruction record. `Copy`, 32 bytes, no pointers
/// into the source trace: record index `i` always corresponds to trace
/// instruction `i`, so error indices line up with the interpreter.
#[derive(Clone, Copy)]
pub(crate) struct OpRec {
    /// Handler-table index ([`K_INT`] … [`K_FAULT`]).
    pub kind: u8,
    /// Destination register index (class implied by `kind`/`k3`).
    pub dst: u8,
    /// First/second source register index, or [`NO_REG`].
    pub src1: u8,
    pub src2: u8,
    /// Scalar ALU: operand class of `src1` / `src2` / the destination.
    pub k1: u8,
    pub k2: u8,
    pub k3: u8,
    /// Captured vector length (vector records).
    pub vl: u8,
    /// Side-table index: `mems` for memory records, `reduces` for
    /// [`K_VREDUCE`], `faults` for [`K_FAULT`]; [`NO_MEM`] when absent.
    pub aux: u32,
    /// Immediate (shift amounts, `3dvmov` pointer stride, `setvl` value).
    pub imm: i64,
    /// Element function for ALU/µSIMD/vector-compute records.
    pub f: ElemFn,
}

/// One straight-line run: `len` records starting at `start`.
/// Boundary instructions (branch / `setvl` / `setvs`) form their own
/// single-record runs.
#[derive(Clone, Copy)]
pub(crate) struct Run {
    pub start: u32,
    pub len: u32,
}

/// A [`Trace`] pre-decoded for the trace-specializing executor.
///
/// Decode once, execute with zero per-instruction allocation. Decoding
/// never fails: malformed instructions decode to records that raise the
/// interpreter's exact error when (and only when) execution reaches
/// them.
pub struct DecodedTrace {
    pub(crate) ops: Vec<OpRec>,
    pub(crate) mems: Vec<MemAccess>,
    pub(crate) faults: Vec<&'static str>,
    pub(crate) reduces: Vec<ReduceFn>,
    pub(crate) runs: Vec<Run>,
    fused: u32,
}

impl std::fmt::Debug for DecodedTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodedTrace")
            .field("instrs", &self.ops.len())
            .field("runs", &self.runs.len())
            .field("fused_pairs", &self.fused)
            .finish()
    }
}

impl DecodedTrace {
    /// Pre-decodes a trace (one pass, infallible).
    pub fn decode(trace: &Trace) -> Self {
        let mut d = DecodedTrace {
            ops: Vec::with_capacity(trace.len()),
            mems: Vec::new(),
            faults: Vec::new(),
            reduces: Vec::new(),
            runs: Vec::new(),
            fused: 0,
        };
        for instr in trace.iter() {
            let rec = d.decode_instr(instr);
            d.ops.push(rec);
        }
        d.detect_runs_and_fuse();
        d
    }

    /// Number of decoded instructions (equals the trace length).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the decoded trace holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of straight-line runs detected (boundary instructions
    /// count as single-instruction runs).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Number of adjacent scalar-ALU pairs fused into one dispatch.
    pub fn fused_pairs(&self) -> usize {
        self.fused as usize
    }

    fn fault(&mut self, what: &'static str) -> OpRec {
        self.faults.push(what);
        OpRec { kind: K_FAULT, aux: self.faults.len() as u32 - 1, ..NOP_REC }
    }

    fn push_mem(&mut self, mem: Option<MemAccess>) -> u32 {
        match mem {
            Some(m) => {
                self.mems.push(m);
                self.mems.len() as u32 - 1
            }
            None => NO_MEM,
        }
    }

    fn decode_instr(&mut self, i: &Instruction) -> OpRec {
        match i.opcode {
            Opcode::IntAlu(op) => self.decode_int(op, i),
            Opcode::Branch => OpRec { kind: K_BRANCH, ..NOP_REC },
            Opcode::LoadScalar => {
                let Some(_) = i.mem else { return self.fault("missing memory descriptor") };
                let Some(dst) = find_gpr(i.dsts.iter()) else {
                    return self.fault("gpr destination");
                };
                OpRec { kind: K_LOAD_SCALAR, dst, aux: self.push_mem(i.mem), ..NOP_REC }
            }
            Opcode::StoreScalar => {
                let Some(_) = i.mem else { return self.fault("missing memory descriptor") };
                let Some(src) = find_gpr(i.srcs.iter()) else { return self.fault("gpr source") };
                OpRec { kind: K_STORE_SCALAR, src1: src, aux: self.push_mem(i.mem), ..NOP_REC }
            }
            Opcode::LoadMmx => {
                let Some(_) = i.mem else { return self.fault("missing memory descriptor") };
                let Some(dst) = find_mmx(i.dsts.iter()) else {
                    return self.fault("mmx destination");
                };
                OpRec { kind: K_LOAD_MMX, dst, aux: self.push_mem(i.mem), ..NOP_REC }
            }
            Opcode::StoreMmx => {
                let Some(_) = i.mem else { return self.fault("missing memory descriptor") };
                let Some(src) = find_mmx(i.srcs.iter()) else { return self.fault("mmx source") };
                OpRec { kind: K_STORE_MMX, src1: src, aux: self.push_mem(i.mem), ..NOP_REC }
            }
            Opcode::Usimd(op) => {
                // Interpreter order: destination first, then sources.
                let Some(dst) = find_mmx(i.dsts.iter()) else {
                    return self.fault("mmx destination");
                };
                let Some(a) = find_mmx(i.srcs.iter()) else { return self.fault("usimd source") };
                let b = nth_mmx(i.srcs.iter(), 1).unwrap_or(NO_REG);
                OpRec { kind: K_USIMD, dst, src1: a, src2: b, imm: i.imm, f: usimd_fn(op), ..NOP_REC }
            }
            Opcode::SetVl => OpRec { kind: K_SET_VL, imm: i.imm, ..NOP_REC },
            Opcode::SetVs => OpRec { kind: K_SET_VS, imm: i.imm, ..NOP_REC },
            Opcode::VLoad => OpRec {
                kind: K_VLOAD,
                dst: find_mom(i.dsts.iter()).unwrap_or(NO_REG),
                vl: i.vl,
                aux: self.push_mem(i.mem),
                ..NOP_REC
            },
            Opcode::VStore => OpRec {
                kind: K_VSTORE,
                src1: find_mom(i.srcs.iter()).unwrap_or(NO_REG),
                vl: i.vl,
                aux: self.push_mem(i.mem),
                ..NOP_REC
            },
            Opcode::VCompute(op) => OpRec {
                kind: K_VCOMPUTE,
                dst: find_mom(i.dsts.iter()).unwrap_or(NO_REG),
                src1: find_mom(i.srcs.iter()).unwrap_or(NO_REG),
                src2: nth_mom(i.srcs.iter(), 1).unwrap_or(NO_REG),
                vl: i.vl,
                imm: i.imm,
                f: usimd_fn(op),
                ..NOP_REC
            },
            Opcode::VReduce(op) => {
                self.reduces.push(reduce_fn(op));
                OpRec {
                    kind: K_VREDUCE,
                    dst: find_acc(i.dsts.iter()).unwrap_or(NO_REG),
                    src1: find_mom(i.srcs.iter()).unwrap_or(NO_REG),
                    src2: nth_mom(i.srcs.iter(), 1).unwrap_or(NO_REG),
                    vl: i.vl,
                    aux: self.reduces.len() as u32 - 1,
                    ..NOP_REC
                }
            }
            Opcode::ReadAcc => {
                let Some(dst) = find_gpr(i.dsts.iter()) else {
                    return self.fault("gpr destination");
                };
                let Some(src) = find_acc(i.srcs.iter()) else {
                    return self.fault("accumulator source");
                };
                OpRec { kind: K_READ_ACC, dst, src1: src, ..NOP_REC }
            }
            Opcode::DvLoad => OpRec {
                kind: K_DVLOAD,
                dst: find_dreg(i.dsts.iter()).unwrap_or(NO_REG),
                vl: i.vl,
                aux: self.push_mem(i.mem),
                imm: i.imm,
                ..NOP_REC
            },
            Opcode::DvMov => OpRec {
                kind: K_DVMOV,
                dst: find_mom(i.dsts.iter()).unwrap_or(NO_REG),
                src1: find_dreg(i.srcs.iter()).unwrap_or(NO_REG),
                vl: i.vl,
                imm: i.imm,
                ..NOP_REC
            },
        }
    }

    fn decode_int(&mut self, op: IntOp, i: &Instruction) -> OpRec {
        // Destination dispatch mirrors `exec_int`: the *first* listed
        // destination decides, whatever its class.
        let (k3, dst) = match i.dsts.iter().next() {
            Some(Reg::Gpr(r)) => (DST_GPR, r.index()),
            Some(Reg::Mmx(r)) => (DST_MMX, r.index()),
            Some(Reg::Acc(r)) => (DST_ACC, r.index()),
            Some(_) => return self.fault("int destination class"),
            None => return self.fault("missing int destination"),
        };
        let src = |r: Reg| match r {
            Reg::Gpr(x) => (SRC_GPR, x.index()),
            Reg::Mmx(x) => (SRC_MMX, x.index()),
            Reg::Acc(x) => (SRC_ACC, x.index()),
            _ => (SRC_ZERO, 0),
        };
        let mut srcs = i.srcs.iter();
        let (k1, src1) = match srcs.next() {
            Some(r) => src(r),
            // No sources: `mov` takes the immediate, everything else
            // computes on a = 0.
            None if op == IntOp::Mov => (SRC_IMM, 0),
            None => (SRC_ZERO, 0),
        };
        // A missing second source falls back to the immediate.
        let (k2, src2) = match srcs.next() {
            Some(r) => src(r),
            None => (SRC_IMM, 0),
        };
        OpRec {
            kind: K_INT,
            dst,
            src1,
            src2,
            k1,
            k2,
            k3,
            imm: i.imm,
            f: int_fn(op),
            ..NOP_REC
        }
    }

    /// Splits the record stream into straight-line runs (boundaries:
    /// control flow and VL/VS changes) and fuses adjacent scalar-ALU
    /// pairs within each run.
    fn detect_runs_and_fuse(&mut self) {
        let n = self.ops.len();
        let mut start = 0usize;
        let mut i = 0usize;
        while i < n {
            if is_boundary(self.ops[i].kind) {
                if i > start {
                    self.push_run(start, i);
                }
                self.runs.push(Run { start: i as u32, len: 1 });
                start = i + 1;
            }
            i += 1;
        }
        if n > start {
            self.push_run(start, n);
        }
    }

    fn push_run(&mut self, start: usize, end: usize) {
        self.runs.push(Run { start: start as u32, len: (end - start) as u32 });
        // Greedy pairwise fusion of adjacent scalar ALU records. Both
        // records stay in place (indices keep matching the trace); the
        // first becomes the pair head and the dispatch loop skips the
        // second. K_INT records cannot fault, so the fused handler needs
        // no error paths.
        let mut i = start;
        while i + 1 < end {
            if self.ops[i].kind == K_INT && self.ops[i + 1].kind == K_INT {
                self.ops[i].kind = K_INT_PAIR;
                self.fused += 1;
                i += 2;
            } else {
                i += 1;
            }
        }
    }
}

fn is_boundary(kind: u8) -> bool {
    matches!(kind, K_BRANCH | K_SET_VL | K_SET_VS)
}

/// The do-nothing record all decodes start from.
const NOP_REC: OpRec = OpRec {
    kind: K_BRANCH,
    dst: NO_REG,
    src1: NO_REG,
    src2: NO_REG,
    k1: 0,
    k2: 0,
    k3: 0,
    vl: 1,
    aux: NO_MEM,
    imm: 0,
    f: fn_zero,
};

fn fn_zero(_a: u64, _b: u64, _imm: i64) -> u64 {
    0
}

// ---- operand-list scans (decode-time analogue of exec.rs `extract!`) ----

macro_rules! finder {
    ($nth:ident, $variant:ident) => {
        fn $nth(iter: impl Iterator<Item = Reg>, n: usize) -> Option<u8> {
            iter.filter_map(|r| match r {
                Reg::$variant(x) => Some(x.index()),
                _ => None,
            })
            .nth(n)
        }
    };
}

finder!(nth_gpr, Gpr);
finder!(nth_mmx, Mmx);
finder!(nth_mom, Mom);
finder!(nth_dreg, D);
finder!(nth_acc, Acc);

fn find_gpr(iter: impl Iterator<Item = Reg>) -> Option<u8> {
    nth_gpr(iter, 0)
}
fn find_mmx(iter: impl Iterator<Item = Reg>) -> Option<u8> {
    nth_mmx(iter, 0)
}
fn find_mom(iter: impl Iterator<Item = Reg>) -> Option<u8> {
    nth_mom(iter, 0)
}
fn find_dreg(iter: impl Iterator<Item = Reg>) -> Option<u8> {
    nth_dreg(iter, 0)
}
fn find_acc(iter: impl Iterator<Item = Reg>) -> Option<u8> {
    nth_acc(iter, 0)
}

// ---- sub-op resolution to element functions -----------------------------

fn int_fn(op: IntOp) -> ElemFn {
    match op {
        IntOp::Mov => (|a, _, _| a) as ElemFn,
        IntOp::Add => (|a, b, _| a.wrapping_add(b)) as ElemFn,
        IntOp::Sub => (|a, b, _| a.wrapping_sub(b)) as ElemFn,
        IntOp::Mul => (|a, b, _| a.wrapping_mul(b)) as ElemFn,
        IntOp::And => (|a, b, _| a & b) as ElemFn,
        IntOp::Or => (|a, b, _| a | b) as ElemFn,
        IntOp::Xor => (|a, b, _| a ^ b) as ElemFn,
        IntOp::Shl => (|a, b, _| a.wrapping_shl(b as u32)) as ElemFn,
        IntOp::Shr => (|a, b, _| a.wrapping_shr(b as u32)) as ElemFn,
        IntOp::Sar => (|a, b, _| ((a as i64).wrapping_shr(b as u32)) as u64) as ElemFn,
        IntOp::SltS => (|a, b, _| ((a as i64) < (b as i64)) as u64) as ElemFn,
        IntOp::SltU => (|a, b, _| (a < b) as u64) as ElemFn,
    }
}

/// Monomorphizes a width-parametric `mom3d_simd` op into an [`ElemFn`].
macro_rules! wfn {
    ($f:path, $w:expr) => {
        match $w {
            Width::B8 => (|a, b, _| $f(a, b, simd::Width::B8)) as ElemFn,
            Width::H16 => (|a, b, _| $f(a, b, simd::Width::H16)) as ElemFn,
            Width::W32 => (|a, b, _| $f(a, b, simd::Width::W32)) as ElemFn,
            Width::D64 => (|a, b, _| $f(a, b, simd::Width::D64)) as ElemFn,
        }
    };
}

/// Same, for shift ops whose second operand is the immediate.
macro_rules! sfn {
    ($f:path, $w:expr) => {
        match $w {
            Width::B8 => (|a, _, imm| $f(a, imm as u32, simd::Width::B8)) as ElemFn,
            Width::H16 => (|a, _, imm| $f(a, imm as u32, simd::Width::H16)) as ElemFn,
            Width::W32 => (|a, _, imm| $f(a, imm as u32, simd::Width::W32)) as ElemFn,
            Width::D64 => (|a, _, imm| $f(a, imm as u32, simd::Width::D64)) as ElemFn,
        }
    };
}

fn usimd_fn(op: UsimdOp) -> ElemFn {
    match op {
        UsimdOp::AddWrap(w) => wfn!(simd::add_wrap, w),
        UsimdOp::SubWrap(w) => wfn!(simd::sub_wrap, w),
        UsimdOp::AddSatU(w) => wfn!(simd::add_sat_u, w),
        UsimdOp::SubSatU(w) => wfn!(simd::sub_sat_u, w),
        UsimdOp::AddSatS(w) => wfn!(simd::add_sat_s, w),
        UsimdOp::SubSatS(w) => wfn!(simd::sub_sat_s, w),
        UsimdOp::MinU(w) => wfn!(simd::min_u, w),
        UsimdOp::MaxU(w) => wfn!(simd::max_u, w),
        UsimdOp::MinS(w) => wfn!(simd::min_s, w),
        UsimdOp::MaxS(w) => wfn!(simd::max_s, w),
        UsimdOp::AbsDiffU(w) => wfn!(simd::abs_diff_u, w),
        UsimdOp::SadU8 => (|a, b, _| simd::sad_u8(a, b)) as ElemFn,
        UsimdOp::AvgU(w) => wfn!(simd::avg_u, w),
        UsimdOp::MulLow(w) => wfn!(simd::mul_low_16, w),
        UsimdOp::MulHighS16 => (|a, b, _| simd::mul_high_s16(a, b)) as ElemFn,
        UsimdOp::MaddS16 => (|a, b, _| simd::madd_s16(a, b)) as ElemFn,
        UsimdOp::Shl(w) => sfn!(simd::shl, w),
        UsimdOp::ShrL(w) => sfn!(simd::shr_logic, w),
        UsimdOp::ShrA(w) => sfn!(simd::shr_arith, w),
        UsimdOp::And => (|a, b, _| a & b) as ElemFn,
        UsimdOp::Or => (|a, b, _| a | b) as ElemFn,
        UsimdOp::Xor => (|a, b, _| a ^ b) as ElemFn,
        UsimdOp::AndNot => (|a, b, _| !a & b) as ElemFn,
        UsimdOp::CmpEq(w) => wfn!(simd::cmp_eq, w),
        UsimdOp::CmpGtS(w) => wfn!(simd::cmp_gt_s, w),
        UsimdOp::PackUs16To8 => (|a, b, _| simd::pack_s16_to_u8_sat(a, b)) as ElemFn,
        UsimdOp::PackSs16To8 => (|a, b, _| simd::pack_s16_to_s8_sat(a, b)) as ElemFn,
        UsimdOp::PackSs32To16 => (|a, b, _| simd::pack_s32_to_s16_sat(a, b)) as ElemFn,
        UsimdOp::UnpackLo(w) => wfn!(simd::unpack_lo, w),
        UsimdOp::UnpackHi(w) => wfn!(simd::unpack_hi, w),
    }
}

macro_rules! rfn {
    ($f:path, $w:expr) => {
        match $w {
            Width::B8 => (|a, _| $f(a, simd::Width::B8) as i128) as ReduceFn,
            Width::H16 => (|a, _| $f(a, simd::Width::H16) as i128) as ReduceFn,
            Width::W32 => (|a, _| $f(a, simd::Width::W32) as i128) as ReduceFn,
            Width::D64 => (|a, _| $f(a, simd::Width::D64) as i128) as ReduceFn,
        }
    };
}

fn reduce_fn(op: ReduceOp) -> ReduceFn {
    match op {
        ReduceOp::SadAccumU8 => (|a, b| simd::sad_u8(a, b) as i128) as ReduceFn,
        ReduceOp::SumU(w) => rfn!(simd::hsum_u, w),
        ReduceOp::SumS(w) => rfn!(simd::hsum_s, w),
        ReduceOp::DotS16 => (|a, b| {
            let mut s: i128 = 0;
            for i in 0..4 {
                let x = simd::sext(simd::lane(a, i, simd::Width::H16), simd::Width::H16);
                let y = simd::sext(simd::lane(b, i, simd::Width::H16), simd::Width::H16);
                s += (x * y) as i128;
            }
            s
        }) as ReduceFn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mom3d_isa::{Gpr, MmxReg, MomReg, TraceBuilder};

    #[test]
    fn runs_split_at_control_flow_and_vl_changes() {
        let mut tb = TraceBuilder::new();
        let a = tb.li(Gpr::new(1), 1); // run 0: two ALU records
        tb.li(Gpr::new(2), 2);
        tb.branch(a, true); // boundary run
        tb.li(Gpr::new(3), 3); // run 2
        tb.set_vl(4); // boundary run
        tb.set_vs(16); // boundary run
        let b = tb.li(Gpr::new(4), 0x100); // run 5: alu + vload
        tb.vload(MomReg::new(0), b, 0x100);
        let d = DecodedTrace::decode(&tb.finish());
        assert_eq!(d.len(), 8);
        assert_eq!(d.run_count(), 6);
        let lens: Vec<u32> = d.runs.iter().map(|r| r.len).collect();
        assert_eq!(lens, vec![2, 1, 1, 1, 1, 2]);
    }

    #[test]
    fn adjacent_scalar_ops_fuse_within_runs_only() {
        let mut tb = TraceBuilder::new();
        tb.li(Gpr::new(1), 1);
        tb.li(Gpr::new(2), 2); // fuses with previous
        tb.li(Gpr::new(3), 3); // odd one out
        tb.branch(Gpr::new(1), false); // boundary: no fusion across
        tb.li(Gpr::new(4), 4);
        tb.li(Gpr::new(5), 5); // fuses
        let d = DecodedTrace::decode(&tb.finish());
        assert_eq!(d.fused_pairs(), 2);
        assert_eq!(d.ops[0].kind, K_INT_PAIR);
        assert_eq!(d.ops[1].kind, K_INT);
        assert_eq!(d.ops[2].kind, K_INT);
        assert_eq!(d.ops[4].kind, K_INT_PAIR);
    }

    #[test]
    fn vector_records_keep_sentinels_for_lazy_errors() {
        use mom3d_isa::Instruction;
        // A vload with no destination decodes (it must only fail when
        // reached, and only after the VL/VS checks pass).
        let mut t = mom3d_isa::Trace::new();
        t.push(Instruction::op(Opcode::VLoad, &[], &[]).with_vl(16));
        let d = DecodedTrace::decode(&t);
        assert_eq!(d.ops[0].kind, K_VLOAD);
        assert_eq!(d.ops[0].dst, NO_REG);
        assert_eq!(d.ops[0].aux, NO_MEM);
    }

    #[test]
    fn malformed_scalar_decodes_to_fault_record() {
        use mom3d_isa::Instruction;
        let mut t = mom3d_isa::Trace::new();
        t.push(Instruction::op(Opcode::LoadScalar, &[Reg::Gpr(Gpr::new(1))], &[]));
        t.push(Instruction::op(Opcode::Usimd(UsimdOp::SadU8), &[Reg::Mmx(MmxReg::new(0))], &[]));
        let d = DecodedTrace::decode(&t);
        assert_eq!(d.ops[0].kind, K_FAULT);
        assert_eq!(d.faults[d.ops[0].aux as usize], "missing memory descriptor");
        assert_eq!(d.ops[1].kind, K_FAULT);
        assert_eq!(d.faults[d.ops[1].aux as usize], "usimd source");
    }
}
