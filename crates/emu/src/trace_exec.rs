//! The trace-specializing executor: runs a [`DecodedTrace`] through a
//! flat function-pointer table.
//!
//! Each decoded record dispatches through [`HANDLERS`] — indexed by the
//! record's `kind`, in the same order as the `K_*` constants in
//! `decode.rs`. A handler returns the number of records it consumed
//! (the fused scalar-pair handler consumes two), or the interpreter's
//! exact [`EmuError`] for the instruction at its original trace index.
//!
//! Memory goes through `mom3d-mem`'s page-batched accessors (one page
//! lookup per word or per page-sized chunk instead of one per byte),
//! which are pinned bit-identical to the per-byte paths the interpreter
//! oracle uses. Vector addresses still come from
//! `MemAccess::block_addr`, so out-of-range element indices panic with
//! the interpreter's message.

use crate::decode::{
    DecodedTrace, OpRec, DST_GPR, DST_MMX, KIND_COUNT, NO_MEM, NO_REG, SRC_ACC, SRC_GPR, SRC_IMM,
    SRC_MMX,
};
use crate::error::EmuError;
use crate::machine::Machine;
use mom3d_isa::{AccReg, DReg, Gpr, MemAccess, MmxReg, MomReg};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of traces executed through the specializing path
/// (not the interpreter oracle). Lets tests assert the JIT never runs
/// where it must not — e.g. on a fully warm workload cache.
static JIT_RUNS: AtomicU64 = AtomicU64::new(0);

/// Number of traces executed through the trace-specializing path since
/// process start.
pub fn jit_runs() -> u64 {
    JIT_RUNS.load(Ordering::Relaxed)
}

pub(crate) fn note_jit_run() {
    JIT_RUNS.fetch_add(1, Ordering::Relaxed);
}

/// Execution context threaded through every handler: the machine, the
/// decoded side tables, and reusable staging buffers (the executor does
/// no per-instruction allocation).
pub(crate) struct Ctx<'a> {
    m: &'a mut Machine,
    mems: &'a [MemAccess],
    faults: &'a [&'static str],
    reduces: &'a [crate::decode::ReduceFn],
    /// `3dvload` staging blocks, reused across instructions.
    blocks: Vec<Vec<u8>>,
}

type Handler = fn(&mut Ctx, &[OpRec], usize) -> Result<usize, EmuError>;

/// Flat dispatch table, indexed by `OpRec::kind`.
static HANDLERS: [Handler; KIND_COUNT] = [
    h_int,
    h_int_pair,
    h_branch,
    h_load_scalar,
    h_store_scalar,
    h_load_mmx,
    h_store_mmx,
    h_usimd,
    h_set_vl,
    h_set_vs,
    h_vload,
    h_vstore,
    h_vcompute,
    h_vreduce,
    h_read_acc,
    h_dvload,
    h_dvmov,
    h_fault,
];

/// Executes a decoded trace, updating `executed` exactly like the
/// interpreter (the faulting instruction counts as executed).
pub(crate) fn execute(
    d: &DecodedTrace,
    m: &mut Machine,
    executed: &mut u64,
) -> Result<(), EmuError> {
    let mut c =
        Ctx { m, mems: &d.mems, faults: &d.faults, reduces: &d.reduces, blocks: Vec::new() };
    for run in &d.runs {
        let start = run.start as usize;
        let end = start + run.len as usize;
        let mut i = start;
        while i < end {
            let kind = d.ops[i].kind;
            match HANDLERS[kind as usize](&mut c, &d.ops, i) {
                Ok(consumed) => {
                    *executed += consumed as u64;
                    i += consumed;
                }
                Err(e) => {
                    *executed += 1;
                    return Err(e);
                }
            }
        }
    }
    Ok(())
}

// ---- scalar handlers ------------------------------------------------------

#[inline(always)]
fn int_operand(m: &Machine, class: u8, idx: u8, imm: i64) -> u64 {
    match class {
        SRC_GPR => m.gpr(Gpr::new(idx)),
        SRC_MMX => m.mmx(MmxReg::new(idx)),
        SRC_ACC => m.acc(AccReg::new(idx)) as u64,
        SRC_IMM => imm as u64,
        _ => 0,
    }
}

#[inline(always)]
fn int_step(m: &mut Machine, o: &OpRec) {
    let a = int_operand(m, o.k1, o.src1, o.imm);
    let b = int_operand(m, o.k2, o.src2, o.imm);
    let r = (o.f)(a, b, o.imm);
    match o.k3 {
        DST_GPR => m.set_gpr(Gpr::new(o.dst), r),
        DST_MMX => m.set_mmx(MmxReg::new(o.dst), r),
        _ => m.set_acc(AccReg::new(o.dst), r as i128),
    }
}

fn h_int(c: &mut Ctx, ops: &[OpRec], i: usize) -> Result<usize, EmuError> {
    int_step(c.m, &ops[i]);
    Ok(1)
}

fn h_int_pair(c: &mut Ctx, ops: &[OpRec], i: usize) -> Result<usize, EmuError> {
    int_step(c.m, &ops[i]);
    int_step(c.m, &ops[i + 1]);
    Ok(2)
}

fn h_branch(_c: &mut Ctx, _ops: &[OpRec], _i: usize) -> Result<usize, EmuError> {
    // Direction is pre-resolved in the trace.
    Ok(1)
}

fn h_load_scalar(c: &mut Ctx, ops: &[OpRec], i: usize) -> Result<usize, EmuError> {
    let o = &ops[i];
    let mem = &c.mems[o.aux as usize];
    let mut buf = [0u8; 8];
    c.m.mem.read_paged(mem.base, &mut buf[..mem.elem_bytes as usize]);
    c.m.set_gpr(Gpr::new(o.dst), u64::from_le_bytes(buf));
    Ok(1)
}

fn h_store_scalar(c: &mut Ctx, ops: &[OpRec], i: usize) -> Result<usize, EmuError> {
    let o = &ops[i];
    let mem = &c.mems[o.aux as usize];
    let bytes = c.m.gpr(Gpr::new(o.src1)).to_le_bytes();
    c.m.mem.write_paged(mem.base, &bytes[..mem.elem_bytes as usize]);
    Ok(1)
}

fn h_load_mmx(c: &mut Ctx, ops: &[OpRec], i: usize) -> Result<usize, EmuError> {
    let o = &ops[i];
    let v = c.m.mem.read_u64_paged(c.mems[o.aux as usize].base);
    c.m.set_mmx(MmxReg::new(o.dst), v);
    Ok(1)
}

fn h_store_mmx(c: &mut Ctx, ops: &[OpRec], i: usize) -> Result<usize, EmuError> {
    let o = &ops[i];
    let v = c.m.mmx(MmxReg::new(o.src1));
    c.m.mem.write_u64_paged(c.mems[o.aux as usize].base, v);
    Ok(1)
}

fn h_usimd(c: &mut Ctx, ops: &[OpRec], i: usize) -> Result<usize, EmuError> {
    let o = &ops[i];
    let a = c.m.mmx(MmxReg::new(o.src1));
    let b = if o.src2 == NO_REG { 0 } else { c.m.mmx(MmxReg::new(o.src2)) };
    c.m.set_mmx(MmxReg::new(o.dst), (o.f)(a, b, o.imm));
    Ok(1)
}

fn h_set_vl(c: &mut Ctx, ops: &[OpRec], i: usize) -> Result<usize, EmuError> {
    c.m.set_vl(ops[i].imm as u8);
    Ok(1)
}

fn h_set_vs(c: &mut Ctx, ops: &[OpRec], i: usize) -> Result<usize, EmuError> {
    c.m.set_vs(ops[i].imm);
    Ok(1)
}

fn h_read_acc(c: &mut Ctx, ops: &[OpRec], i: usize) -> Result<usize, EmuError> {
    let o = &ops[i];
    let v = c.m.acc(AccReg::new(o.src1)) as u64;
    c.m.set_gpr(Gpr::new(o.dst), v);
    Ok(1)
}

fn h_fault(c: &mut Ctx, ops: &[OpRec], i: usize) -> Result<usize, EmuError> {
    Err(EmuError::Malformed { index: i, what: c.faults[ops[i].aux as usize] })
}

// ---- vector handlers ------------------------------------------------------
//
// Runtime checks replay the interpreter's exact order: VL, then the
// memory descriptor, then VS (2D memory ops only), then operands.

#[inline(always)]
fn check_vl(m: &Machine, o: &OpRec, index: usize) -> Result<(), EmuError> {
    if o.vl != m.vl() {
        return Err(EmuError::VlMismatch { index, captured: o.vl, architectural: m.vl() });
    }
    Ok(())
}

#[inline(always)]
fn need_mem<'a>(
    mems: &'a [MemAccess],
    o: &OpRec,
    index: usize,
) -> Result<&'a MemAccess, EmuError> {
    if o.aux == NO_MEM {
        return Err(EmuError::Malformed { index, what: "missing memory descriptor" });
    }
    Ok(&mems[o.aux as usize])
}

#[inline(always)]
fn check_vs(m: &Machine, stride: i64, index: usize) -> Result<(), EmuError> {
    if stride != m.vs() {
        return Err(EmuError::VsMismatch { index, captured: stride, architectural: m.vs() });
    }
    Ok(())
}

#[inline(always)]
fn need_reg(idx: u8, what: &'static str, index: usize) -> Result<u8, EmuError> {
    if idx == NO_REG {
        return Err(EmuError::Malformed { index, what });
    }
    Ok(idx)
}

fn h_vload(c: &mut Ctx, ops: &[OpRec], i: usize) -> Result<usize, EmuError> {
    let o = &ops[i];
    check_vl(c.m, o, i)?;
    let mem = *need_mem(c.mems, o, i)?;
    check_vs(c.m, mem.stride, i)?;
    let dst = MomReg::new(need_reg(o.dst, "mom destination", i)?);
    for e in 0..o.vl as usize {
        let v = c.m.mem.read_u64_paged(mem.block_addr(e));
        c.m.set_mom(dst, e, v);
    }
    Ok(1)
}

fn h_vstore(c: &mut Ctx, ops: &[OpRec], i: usize) -> Result<usize, EmuError> {
    let o = &ops[i];
    check_vl(c.m, o, i)?;
    let mem = *need_mem(c.mems, o, i)?;
    check_vs(c.m, mem.stride, i)?;
    let src = MomReg::new(need_reg(o.src1, "mom source", i)?);
    for e in 0..o.vl as usize {
        let v = c.m.mom(src, e);
        c.m.mem.write_u64_paged(mem.block_addr(e), v);
    }
    Ok(1)
}

fn h_vcompute(c: &mut Ctx, ops: &[OpRec], i: usize) -> Result<usize, EmuError> {
    let o = &ops[i];
    check_vl(c.m, o, i)?;
    let dst = MomReg::new(need_reg(o.dst, "mom destination", i)?);
    let a = MomReg::new(need_reg(o.src1, "vector source", i)?);
    if o.src2 == NO_REG {
        for e in 0..o.vl as usize {
            let v = (o.f)(c.m.mom(a, e), 0, o.imm);
            c.m.set_mom(dst, e, v);
        }
    } else {
        let b = MomReg::new(o.src2);
        for e in 0..o.vl as usize {
            let v = (o.f)(c.m.mom(a, e), c.m.mom(b, e), o.imm);
            c.m.set_mom(dst, e, v);
        }
    }
    Ok(1)
}

fn h_vreduce(c: &mut Ctx, ops: &[OpRec], i: usize) -> Result<usize, EmuError> {
    let o = &ops[i];
    check_vl(c.m, o, i)?;
    let acc = AccReg::new(need_reg(o.dst, "accumulator destination", i)?);
    let a = MomReg::new(need_reg(o.src1, "reduce source", i)?);
    let rf = c.reduces[o.aux as usize];
    let mut sum: i128 = 0;
    for e in 0..o.vl as usize {
        let av = c.m.mom(a, e);
        let bv = if o.src2 == NO_REG { 0 } else { c.m.mom(MomReg::new(o.src2), e) };
        sum += rf(av, bv);
    }
    c.m.set_acc(acc, c.m.acc(acc) + sum);
    Ok(1)
}

fn h_dvload(c: &mut Ctx, ops: &[OpRec], i: usize) -> Result<usize, EmuError> {
    let o = &ops[i];
    check_vl(c.m, o, i)?;
    let mem = *need_mem(c.mems, o, i)?;
    let dst = DReg::new(need_reg(o.dst, "3d destination", i)?);
    let vl = o.vl as usize;
    if c.blocks.len() < vl {
        c.blocks.resize_with(vl, Vec::new);
    }
    for (e, block) in c.blocks[..vl].iter_mut().enumerate() {
        block.resize(mem.elem_bytes as usize, 0);
        c.m.mem.read_paged(mem.block_addr(e), block);
    }
    c.m.dfile_mut().load(dst, &c.blocks[..vl], o.imm != 0);
    Ok(1)
}

fn h_dvmov(c: &mut Ctx, ops: &[OpRec], i: usize) -> Result<usize, EmuError> {
    let o = &ops[i];
    check_vl(c.m, o, i)?;
    let dst = MomReg::new(need_reg(o.dst, "mom destination", i)?);
    let src = DReg::new(need_reg(o.src1, "3d source", i)?);
    let vl = o.vl as usize;
    let mut slices = [0u64; 16];
    c.m.dfile_mut().mov_into(src, &mut slices[..vl], o.imm as i16);
    for (e, v) in slices[..vl].iter().enumerate() {
        c.m.set_mom(dst, e, *v);
    }
    Ok(1)
}
