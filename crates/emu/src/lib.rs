//! # mom3d-emu — functional emulator for the MOM 2D/3D vector ISA
//!
//! Architecturally precise execution of [`mom3d_isa::Trace`]s against a
//! [`mom3d_mem::MainMemory`]. The emulator is the correctness oracle of
//! the reproduction: every media workload is generated three ways (MMX,
//! MOM, MOM+3D) and each trace must leave memory bit-identical to the
//! scalar Rust reference. It is also how the memory-vectorizer pass is
//! validated — a vectorized trace must produce exactly the same
//! architectural state as the original.
//!
//! ```
//! use mom3d_emu::Emulator;
//! use mom3d_isa::{TraceBuilder, Gpr, MomReg, UsimdOp, Width};
//!
//! # fn main() -> Result<(), mom3d_emu::EmuError> {
//! let mut tb = TraceBuilder::new();
//! tb.set_vl(2);
//! tb.set_vs(8);
//! let b = tb.li(Gpr::new(1), 0x100);
//! tb.vload(MomReg::new(0), b, 0x100);
//! tb.vop2(UsimdOp::AddWrap(Width::B8), MomReg::new(1), MomReg::new(0), MomReg::new(0));
//! let trace = tb.finish();
//!
//! let mut emu = Emulator::new();
//! emu.machine_mut().mem.write_u64(0x100, 0x0102_0304);
//! emu.run(&trace)?;
//! assert_eq!(emu.machine().mom(MomReg::new(1), 0), 0x0204_0608);
//! # Ok(())
//! # }
//! ```
//!
//! **Place in the dataflow**: the verify stage between kernel
//! generation and timing. `Workload::verify` in `mom3d-kernels` runs
//! this emulator over the trace and compares every output region; only
//! verified traces reach `mom3d-cpu`. The [`Fnv64`] digest utilities
//! fingerprint those verify results so the workload-image cache can
//! persist them across binary invocations.

//!
//! **Execution strategy**: [`Emulator::run`] pre-decodes the trace into
//! a struct-of-arrays [`DecodedTrace`] (opcode-class handler index,
//! packed operand indices, resolved element-function pointers, captured
//! VL and memory-descriptor slots), splits it into straight-line runs
//! at control-flow and VL/VS-change boundaries, fuses adjacent scalar
//! ALU records, and dispatches through a flat handler table. The
//! per-instruction interpreter survives as `Emulator::run_interp`
//! (tests and the `interp-oracle` feature only) — the reference every
//! JIT change is differentially tested against.

mod decode;
mod digest;
mod error;
mod exec;
mod machine;
mod trace_exec;

pub use decode::DecodedTrace;
pub use digest::{checksum64, fnv64, Fnv64};
pub use error::EmuError;
pub use exec::Emulator;
pub use machine::Machine;
pub use trace_exec::jit_runs;
