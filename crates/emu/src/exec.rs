//! Trace execution.

use crate::error::EmuError;
use crate::machine::Machine;
use mom3d_isa::{
    AccReg, DReg, Instruction, IntOp, MomReg, Opcode, ReduceOp, Reg, UsimdOp, Width,
};
use mom3d_simd as simd;

/// Converts the ISA's width tag into the packed-arithmetic crate's.
fn sw(w: Width) -> simd::Width {
    match w {
        Width::B8 => simd::Width::B8,
        Width::H16 => simd::Width::H16,
        Width::W32 => simd::Width::W32,
        Width::D64 => simd::Width::D64,
    }
}

/// The functional emulator: a [`Machine`] plus an execution engine.
#[derive(Debug, Clone, Default)]
pub struct Emulator {
    machine: Machine,
    executed: u64,
}

impl Emulator {
    /// A fresh emulator with zeroed state.
    pub fn new() -> Self {
        Emulator { machine: Machine::new(), executed: 0 }
    }

    /// Wraps an existing machine (e.g. with pre-loaded memory).
    pub fn with_machine(machine: Machine) -> Self {
        Emulator { machine, executed: 0 }
    }

    /// The architectural state.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable architectural state (for loading workload data).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Dynamic instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Executes an entire trace through the trace-specializing executor:
    /// the trace is pre-decoded once ([`crate::DecodedTrace`]) and the
    /// decoded records are dispatched in straight-line runs. Behaviour
    /// (state, errors, error indices) is bit-identical to stepping the
    /// interpreter over the trace.
    ///
    /// # Errors
    ///
    /// Returns the first architectural inconsistency encountered (see
    /// [`EmuError`]); the machine state is valid up to the failing
    /// instruction.
    pub fn run(&mut self, trace: &mom3d_isa::Trace) -> Result<(), EmuError> {
        let decoded = crate::decode::DecodedTrace::decode(trace);
        self.run_decoded(&decoded)
    }

    /// Executes an already-decoded trace (decode once, run many — the
    /// resident-server replay path).
    ///
    /// # Errors
    ///
    /// See [`Emulator::run`].
    pub fn run_decoded(&mut self, decoded: &crate::DecodedTrace) -> Result<(), EmuError> {
        crate::trace_exec::note_jit_run();
        crate::trace_exec::execute(decoded, &mut self.machine, &mut self.executed)
    }

    /// Executes a trace by stepping the per-instruction interpreter —
    /// the reference oracle the specializing executor is differentially
    /// tested against. Compiled only for tests (and the
    /// `interp-oracle` feature the test/bench crates enable).
    ///
    /// # Errors
    ///
    /// See [`Emulator::run`].
    #[cfg(any(test, feature = "interp-oracle"))]
    pub fn run_interp(&mut self, trace: &mom3d_isa::Trace) -> Result<(), EmuError> {
        for (index, instr) in trace.iter().enumerate() {
            self.step(index, instr)?;
        }
        Ok(())
    }

    /// Executes a single instruction.
    ///
    /// # Errors
    ///
    /// See [`EmuError`].
    pub fn step(&mut self, index: usize, instr: &Instruction) -> Result<(), EmuError> {
        self.executed += 1;
        let m = &mut self.machine;
        match instr.opcode {
            Opcode::IntAlu(op) => exec_int(m, op, instr, index)?,
            Opcode::Branch => {} // direction is pre-resolved in the trace
            Opcode::LoadScalar => {
                let mem = need_mem(instr, index)?;
                let dst = only_gpr_dst(instr, index)?;
                let v = m.mem.read_scalar(mem.base, mem.elem_bytes);
                m.set_gpr(dst, v);
            }
            Opcode::StoreScalar => {
                let mem = need_mem(instr, index)?;
                let src = first_gpr_src(instr, index)?;
                let v = m.gpr(src);
                m.mem.write_scalar(mem.base, v, mem.elem_bytes);
            }
            Opcode::LoadMmx => {
                let mem = need_mem(instr, index)?;
                let dst = only_mmx_dst(instr, index)?;
                let v = m.mem.read_u64(mem.base);
                m.set_mmx(dst, v);
            }
            Opcode::StoreMmx => {
                let mem = need_mem(instr, index)?;
                let src = first_mmx_src(instr, index)?;
                m.mem.write_u64(mem.base, m.mmx(src));
            }
            Opcode::Usimd(op) => {
                let dst = only_mmx_dst(instr, index)?;
                let srcs: Vec<u64> = instr
                    .srcs
                    .iter()
                    .filter_map(|r| match r {
                        Reg::Mmx(x) => Some(m.mmx(x)),
                        _ => None,
                    })
                    .collect();
                let a = *srcs.first().ok_or(EmuError::Malformed { index, what: "usimd source" })?;
                let b = srcs.get(1).copied().unwrap_or(0);
                m.set_mmx(dst, apply_usimd(op, a, b, instr.imm));
            }
            Opcode::SetVl => m.set_vl(instr.imm as u8),
            Opcode::SetVs => m.set_vs(instr.imm),
            Opcode::VLoad => {
                check_vl(m, instr, index)?;
                let mem = need_mem(instr, index)?;
                check_vs(m, mem.stride, index)?;
                let dst = only_mom_dst(instr, index)?;
                for e in 0..instr.vl as usize {
                    let v = m.mem.read_u64(mem.block_addr(e));
                    m.set_mom(dst, e, v);
                }
            }
            Opcode::VStore => {
                check_vl(m, instr, index)?;
                let mem = need_mem(instr, index)?;
                check_vs(m, mem.stride, index)?;
                let src = first_mom_src(instr, index)?;
                for e in 0..instr.vl as usize {
                    let v = m.mom(src, e);
                    m.mem.write_u64(mem.block_addr(e), v);
                }
            }
            Opcode::VCompute(op) => {
                check_vl(m, instr, index)?;
                let dst = only_mom_dst(instr, index)?;
                let moms: Vec<MomReg> = instr
                    .srcs
                    .iter()
                    .filter_map(|r| match r {
                        Reg::Mom(x) => Some(x),
                        _ => None,
                    })
                    .collect();
                let a = *moms.first().ok_or(EmuError::Malformed { index, what: "vector source" })?;
                for e in 0..instr.vl as usize {
                    let av = m.mom(a, e);
                    let bv = moms.get(1).map(|r| m.mom(*r, e)).unwrap_or(0);
                    m.set_mom(dst, e, apply_usimd(op, av, bv, instr.imm));
                }
            }
            Opcode::VReduce(op) => {
                check_vl(m, instr, index)?;
                let acc = only_acc_dst(instr, index)?;
                let moms: Vec<MomReg> = instr
                    .srcs
                    .iter()
                    .filter_map(|r| match r {
                        Reg::Mom(x) => Some(x),
                        _ => None,
                    })
                    .collect();
                let a = *moms.first().ok_or(EmuError::Malformed { index, what: "reduce source" })?;
                let mut sum: i128 = 0;
                for e in 0..instr.vl as usize {
                    let av = m.mom(a, e);
                    let bv = moms.get(1).map(|r| m.mom(*r, e)).unwrap_or(0);
                    sum += reduce_element(op, av, bv);
                }
                m.set_acc(acc, m.acc(acc) + sum);
            }
            Opcode::ReadAcc => {
                let dst = only_gpr_dst(instr, index)?;
                let acc = first_acc_src(instr, index)?;
                m.set_gpr(dst, m.acc(acc) as u64);
            }
            Opcode::DvLoad => {
                check_vl(m, instr, index)?;
                let mem = need_mem(instr, index)?;
                let dst = only_dreg_dst(instr, index)?;
                let blocks: Vec<Vec<u8>> = (0..instr.vl as usize)
                    .map(|e| m.mem.read_bytes(mem.block_addr(e), mem.elem_bytes as usize))
                    .collect();
                m.dfile_mut().load(dst, &blocks, instr.imm != 0);
            }
            Opcode::DvMov => {
                check_vl(m, instr, index)?;
                let dst = only_mom_dst(instr, index)?;
                let src = first_dreg_src(instr, index)?;
                let slices = m.dfile_mut().mov(src, instr.vl as usize, instr.imm as i16);
                for (e, v) in slices.into_iter().enumerate() {
                    m.set_mom(dst, e, v);
                }
            }
        }
        Ok(())
    }
}

fn exec_int(m: &mut Machine, op: IntOp, instr: &Instruction, index: usize) -> Result<(), EmuError> {
    // Operand values: GPRs, MMX (for mmx->gpr moves), accumulators.
    let vals: Vec<u64> = instr
        .srcs
        .iter()
        .map(|r| match r {
            Reg::Gpr(x) => m.gpr(x),
            Reg::Mmx(x) => m.mmx(x),
            Reg::Acc(x) => m.acc(x) as u64,
            _ => 0,
        })
        .collect();
    let a = vals.first().copied().unwrap_or(0);
    let b = vals.get(1).copied().unwrap_or(instr.imm as u64);
    let result = match op {
        IntOp::Mov => {
            if instr.srcs.is_empty() {
                instr.imm as u64
            } else {
                a
            }
        }
        IntOp::Add => a.wrapping_add(b),
        IntOp::Sub => a.wrapping_sub(b),
        IntOp::Mul => a.wrapping_mul(b),
        IntOp::And => a & b,
        IntOp::Or => a | b,
        IntOp::Xor => a ^ b,
        IntOp::Shl => a.wrapping_shl(b as u32),
        IntOp::Shr => a.wrapping_shr(b as u32),
        IntOp::Sar => ((a as i64).wrapping_shr(b as u32)) as u64,
        IntOp::SltS => ((a as i64) < (b as i64)) as u64,
        IntOp::SltU => (a < b) as u64,
    };
    match instr.dsts.iter().next() {
        Some(Reg::Gpr(dst)) => m.set_gpr(dst, result),
        Some(Reg::Mmx(dst)) => m.set_mmx(dst, result),
        Some(Reg::Acc(dst)) => m.set_acc(dst, result as i128),
        Some(_) => return Err(EmuError::Malformed { index, what: "int destination class" }),
        None => return Err(EmuError::Malformed { index, what: "missing int destination" }),
    }
    Ok(())
}

/// Applies a µSIMD operation to one 64-bit element pair.
fn apply_usimd(op: UsimdOp, a: u64, b: u64, imm: i64) -> u64 {
    match op {
        UsimdOp::AddWrap(w) => simd::add_wrap(a, b, sw(w)),
        UsimdOp::SubWrap(w) => simd::sub_wrap(a, b, sw(w)),
        UsimdOp::AddSatU(w) => simd::add_sat_u(a, b, sw(w)),
        UsimdOp::SubSatU(w) => simd::sub_sat_u(a, b, sw(w)),
        UsimdOp::AddSatS(w) => simd::add_sat_s(a, b, sw(w)),
        UsimdOp::SubSatS(w) => simd::sub_sat_s(a, b, sw(w)),
        UsimdOp::MinU(w) => simd::min_u(a, b, sw(w)),
        UsimdOp::MaxU(w) => simd::max_u(a, b, sw(w)),
        UsimdOp::MinS(w) => simd::min_s(a, b, sw(w)),
        UsimdOp::MaxS(w) => simd::max_s(a, b, sw(w)),
        UsimdOp::AbsDiffU(w) => simd::abs_diff_u(a, b, sw(w)),
        UsimdOp::SadU8 => simd::sad_u8(a, b),
        UsimdOp::AvgU(w) => simd::avg_u(a, b, sw(w)),
        UsimdOp::MulLow(w) => simd::mul_low_16(a, b, sw(w)),
        UsimdOp::MulHighS16 => simd::mul_high_s16(a, b),
        UsimdOp::MaddS16 => simd::madd_s16(a, b),
        UsimdOp::Shl(w) => simd::shl(a, imm as u32, sw(w)),
        UsimdOp::ShrL(w) => simd::shr_logic(a, imm as u32, sw(w)),
        UsimdOp::ShrA(w) => simd::shr_arith(a, imm as u32, sw(w)),
        UsimdOp::And => a & b,
        UsimdOp::Or => a | b,
        UsimdOp::Xor => a ^ b,
        UsimdOp::AndNot => !a & b,
        UsimdOp::CmpEq(w) => simd::cmp_eq(a, b, sw(w)),
        UsimdOp::CmpGtS(w) => simd::cmp_gt_s(a, b, sw(w)),
        UsimdOp::PackUs16To8 => simd::pack_s16_to_u8_sat(a, b),
        UsimdOp::PackSs16To8 => simd::pack_s16_to_s8_sat(a, b),
        UsimdOp::PackSs32To16 => simd::pack_s32_to_s16_sat(a, b),
        UsimdOp::UnpackLo(w) => simd::unpack_lo(a, b, sw(w)),
        UsimdOp::UnpackHi(w) => simd::unpack_hi(a, b, sw(w)),
    }
}

/// One element's contribution to a reduction.
fn reduce_element(op: ReduceOp, a: u64, b: u64) -> i128 {
    match op {
        ReduceOp::SadAccumU8 => simd::sad_u8(a, b) as i128,
        ReduceOp::SumU(w) => simd::hsum_u(a, sw(w)) as i128,
        ReduceOp::SumS(w) => simd::hsum_s(a, sw(w)) as i128,
        ReduceOp::DotS16 => {
            let mut s: i128 = 0;
            for i in 0..4 {
                let x = simd::sext(simd::lane(a, i, simd::Width::H16), simd::Width::H16);
                let y = simd::sext(simd::lane(b, i, simd::Width::H16), simd::Width::H16);
                s += (x * y) as i128;
            }
            s
        }
    }
}

// ---- operand extraction helpers -------------------------------------------

fn need_mem(i: &Instruction, index: usize) -> Result<mom3d_isa::MemAccess, EmuError> {
    i.mem.ok_or(EmuError::Malformed { index, what: "missing memory descriptor" })
}

fn check_vl(m: &Machine, i: &Instruction, index: usize) -> Result<(), EmuError> {
    if i.vl != m.vl() {
        return Err(EmuError::VlMismatch { index, captured: i.vl, architectural: m.vl() });
    }
    Ok(())
}

fn check_vs(m: &Machine, stride: i64, index: usize) -> Result<(), EmuError> {
    if stride != m.vs() {
        return Err(EmuError::VsMismatch { index, captured: stride, architectural: m.vs() });
    }
    Ok(())
}

macro_rules! extract {
    ($fn_name:ident, $list:ident, $variant:ident, $ty:ty, $what:literal) => {
        fn $fn_name(i: &Instruction, index: usize) -> Result<$ty, EmuError> {
            i.$list
                .iter()
                .find_map(|r| match r {
                    Reg::$variant(x) => Some(x),
                    _ => None,
                })
                .ok_or(EmuError::Malformed { index, what: $what })
        }
    };
}

extract!(only_gpr_dst, dsts, Gpr, mom3d_isa::Gpr, "gpr destination");
extract!(only_mmx_dst, dsts, Mmx, mom3d_isa::MmxReg, "mmx destination");
extract!(only_mom_dst, dsts, Mom, MomReg, "mom destination");
extract!(only_dreg_dst, dsts, D, DReg, "3d destination");
extract!(only_acc_dst, dsts, Acc, AccReg, "accumulator destination");
extract!(first_gpr_src, srcs, Gpr, mom3d_isa::Gpr, "gpr source");
extract!(first_mmx_src, srcs, Mmx, mom3d_isa::MmxReg, "mmx source");
extract!(first_mom_src, srcs, Mom, MomReg, "mom source");
extract!(first_dreg_src, srcs, D, DReg, "3d source");
extract!(first_acc_src, srcs, Acc, AccReg, "accumulator source");

#[cfg(test)]
mod tests {
    use super::*;
    use mom3d_isa::{Gpr, MmxReg, TraceBuilder};

    fn run(tb: TraceBuilder) -> Emulator {
        let mut emu = Emulator::new();
        emu.run(&tb.finish()).expect("trace executes");
        emu
    }

    #[test]
    fn scalar_alu_and_memory() {
        let mut tb = TraceBuilder::new();
        let a = tb.li(Gpr::new(1), 40);
        let b = tb.li(Gpr::new(2), 2);
        tb.alu(IntOp::Add, Gpr::new(3), a, b);
        tb.alui(IntOp::Shl, Gpr::new(4), Gpr::new(3), 1);
        tb.store_scalar(Gpr::new(4), Gpr::new(0), 0x500, 4);
        tb.load_scalar(Gpr::new(5), Gpr::new(0), 0x500, 4);
        let emu = run(tb);
        assert_eq!(emu.machine().gpr(Gpr::new(3)), 42);
        assert_eq!(emu.machine().gpr(Gpr::new(4)), 84);
        assert_eq!(emu.machine().gpr(Gpr::new(5)), 84);
    }

    #[test]
    fn slt_and_branch() {
        let mut tb = TraceBuilder::new();
        tb.li(Gpr::new(1), 5);
        tb.li(Gpr::new(2), 9);
        tb.alu(IntOp::SltS, Gpr::new(3), Gpr::new(1), Gpr::new(2));
        tb.branch(Gpr::new(3), true);
        let emu = run(tb);
        assert_eq!(emu.machine().gpr(Gpr::new(3)), 1);
    }

    #[test]
    fn mmx_roundtrip() {
        let mut tb = TraceBuilder::new();
        let b = tb.li(Gpr::new(1), 0x100);
        tb.movq_load(MmxReg::new(0), b, 0x100, Width::B8);
        tb.usimd2(UsimdOp::AddSatU(Width::B8), MmxReg::new(1), MmxReg::new(0), MmxReg::new(0));
        tb.movq_store(MmxReg::new(1), b, 0x200);
        let mut emu = Emulator::new();
        emu.machine_mut().mem.write_u64(0x100, u64::from_le_bytes([200, 1, 2, 3, 4, 5, 6, 7]));
        emu.run(&tb.finish()).unwrap();
        let out = emu.machine().mem.read_u64(0x200);
        assert_eq!(out.to_le_bytes(), [255, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn vector_load_compute_store() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(4);
        tb.set_vs(16); // elements two words apart
        let b = tb.li(Gpr::new(1), 0x1000);
        tb.vload(mom3d_isa::MomReg::new(0), b, 0x1000);
        tb.vop2i(UsimdOp::Shl(Width::H16), mom3d_isa::MomReg::new(1), mom3d_isa::MomReg::new(0), 1);
        tb.set_vs(8);
        tb.vstore(mom3d_isa::MomReg::new(1), b, 0x2000);
        let mut emu = Emulator::new();
        for e in 0..4u64 {
            emu.machine_mut().mem.write_u64(0x1000 + 16 * e, 0x0001_0002_0003_0004 * (e + 1));
        }
        emu.run(&tb.finish()).unwrap();
        for e in 0..4u64 {
            let expect = (0x0001_0002_0003_0004u64 * (e + 1)) << 1;
            // Shl(H16) doubles each halfword; no cross-lane carries here.
            assert_eq!(emu.machine().mem.read_u64(0x2000 + 8 * e), expect);
        }
    }

    #[test]
    fn vl_mismatch_detected() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        let b = tb.li(Gpr::new(1), 0);
        tb.vload(mom3d_isa::MomReg::new(0), b, 0);
        let mut trace = tb.finish();
        // Corrupt the captured VL.
        let mut bad = *trace.instrs().last().unwrap();
        bad.vl = 4;
        trace.push(bad);
        let mut emu = Emulator::new();
        let err = emu.run(&trace).unwrap_err();
        assert!(matches!(err, EmuError::VlMismatch { captured: 4, architectural: 8, .. }));
    }

    #[test]
    fn sad_reduction_accumulates() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(2);
        tb.set_vs(8);
        let b = tb.li(Gpr::new(1), 0x100);
        tb.vload(mom3d_isa::MomReg::new(0), b, 0x100);
        tb.vload(mom3d_isa::MomReg::new(1), b, 0x110);
        tb.clear_acc(AccReg::new(0));
        tb.vreduce(
            ReduceOp::SadAccumU8,
            AccReg::new(0),
            mom3d_isa::MomReg::new(0),
            Some(mom3d_isa::MomReg::new(1)),
        );
        tb.rdacc(Gpr::new(9), AccReg::new(0));
        let mut emu = Emulator::new();
        emu.machine_mut().mem.write_bytes(0x100, &[10; 16]);
        emu.machine_mut().mem.write_bytes(0x110, &[3; 16]);
        emu.run(&tb.finish()).unwrap();
        assert_eq!(emu.machine().gpr(Gpr::new(9)), 16 * 7);
    }

    #[test]
    fn dvload_dvmov_reconstructs_2d_stream() {
        // Fill memory with a recognizable ramp over 4 "rows" of 16 bytes,
        // then check that 3dvload + 3dvmov(offset k) equals a 2D load at
        // base + k.
        let mut mem_emu = Emulator::new();
        for i in 0..4 * 64u64 {
            mem_emu.machine_mut().mem.write_u8(0x3000 + i, (i % 251) as u8);
        }
        let stride = 64i64;

        // Reference: plain 2D loads at offsets 0..3.
        let mut tb = TraceBuilder::new();
        tb.set_vl(4);
        tb.set_vs(stride);
        let b = tb.li(Gpr::new(1), 0x3000);
        for k in 0..4u64 {
            tb.vload(mom3d_isa::MomReg::new(k as u8), b, 0x3000 + k);
        }
        let mut ref_emu = mem_emu.clone();
        ref_emu.run(&tb.finish()).unwrap();

        // 3D version: one dvload + 4 dvmovs with Ps = 1.
        let mut tb = TraceBuilder::new();
        tb.set_vl(4);
        let b = tb.li(Gpr::new(1), 0x3000);
        tb.dvload(DReg::new(0), b, 0x3000, stride, 2, false); // W = 2 words
        for k in 0..4u8 {
            tb.dvmov(mom3d_isa::MomReg::new(k), DReg::new(0), 1);
        }
        let mut emu3d = mem_emu.clone();
        emu3d.run(&tb.finish()).unwrap();

        for k in 0..4u8 {
            for e in 0..4 {
                assert_eq!(
                    emu3d.machine().mom(mom3d_isa::MomReg::new(k), e),
                    ref_emu.machine().mom(mom3d_isa::MomReg::new(k), e),
                    "candidate {k} element {e}"
                );
            }
        }
    }

    #[test]
    fn dvload_from_end_walks_backward() {
        let mut emu = Emulator::new();
        for i in 0..32u64 {
            emu.machine_mut().mem.write_u8(0x400 + i, i as u8);
        }
        let mut tb = TraceBuilder::new();
        tb.set_vl(1);
        let b = tb.li(Gpr::new(1), 0x400);
        tb.dvload(DReg::new(0), b, 0x400, 0, 4, true); // 32-byte element, from end
        tb.dvmov(mom3d_isa::MomReg::new(0), DReg::new(0), -8);
        tb.dvmov(mom3d_isa::MomReg::new(1), DReg::new(0), -8);
        emu.run(&tb.finish()).unwrap();
        assert_eq!(
            emu.machine().mom(mom3d_isa::MomReg::new(0), 0),
            u64::from_le_bytes([24, 25, 26, 27, 28, 29, 30, 31])
        );
        assert_eq!(
            emu.machine().mom(mom3d_isa::MomReg::new(1), 0),
            u64::from_le_bytes([16, 17, 18, 19, 20, 21, 22, 23])
        );
    }

    #[test]
    fn madd_and_dot_reduction_agree() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(2);
        tb.set_vs(8);
        let b = tb.li(Gpr::new(1), 0x100);
        tb.vload_w(mom3d_isa::MomReg::new(0), b, 0x100, Width::H16);
        tb.vload_w(mom3d_isa::MomReg::new(1), b, 0x110, Width::H16);
        tb.clear_acc(AccReg::new(0));
        tb.vreduce(
            ReduceOp::DotS16,
            AccReg::new(0),
            mom3d_isa::MomReg::new(0),
            Some(mom3d_isa::MomReg::new(1)),
        );
        tb.rdacc(Gpr::new(2), AccReg::new(0));
        let mut emu = Emulator::new();
        // a = [1,2,3,4, 5,6,7,8]; b = [2,2,2,2, 1,1,1,1] (i16 lanes)
        for (i, v) in [1i16, 2, 3, 4, 5, 6, 7, 8].iter().enumerate() {
            emu.machine_mut().mem.write_u16(0x100 + 2 * i as u64, *v as u16);
        }
        for i in 0..4 {
            emu.machine_mut().mem.write_u16(0x110 + 2 * i as u64, 2);
        }
        for i in 4..8 {
            emu.machine_mut().mem.write_u16(0x110 + 2 * i as u64, 1);
        }
        emu.run(&tb.finish()).unwrap();
        assert_eq!(emu.machine().gpr(Gpr::new(2)), (1 + 2 + 3 + 4) * 2 + 5 + 6 + 7 + 8);
    }
}
