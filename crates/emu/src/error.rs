//! Emulator error type.

use std::error::Error;
use std::fmt;

/// An architectural inconsistency detected while executing a trace.
///
/// The emulator is deliberately strict: a trace whose captured vector
/// state disagrees with the architectural `VL`/`VS` registers indicates a
/// code-generator bug, and the reproduction treats it as fatal rather
/// than silently producing wrong data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// A vector instruction's captured VL differs from the architectural
    /// vector-length register.
    VlMismatch {
        /// Trace position.
        index: usize,
        /// VL captured in the instruction.
        captured: u8,
        /// Architectural VL at execution time.
        architectural: u8,
    },
    /// A 2D memory instruction's captured stride differs from the
    /// architectural vector-stride register.
    VsMismatch {
        /// Trace position.
        index: usize,
        /// Stride captured in the instruction.
        captured: i64,
        /// Architectural VS at execution time.
        architectural: i64,
    },
    /// An instruction was missing a required operand or descriptor.
    Malformed {
        /// Trace position.
        index: usize,
        /// What was wrong.
        what: &'static str,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::VlMismatch { index, captured, architectural } => write!(
                f,
                "instruction {index}: captured VL {captured} != architectural VL {architectural}"
            ),
            EmuError::VsMismatch { index, captured, architectural } => write!(
                f,
                "instruction {index}: captured VS {captured} != architectural VS {architectural}"
            ),
            EmuError::Malformed { index, what } => {
                write!(f, "instruction {index}: malformed instruction ({what})")
            }
        }
    }
}

impl Error for EmuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EmuError::VlMismatch { index: 7, captured: 8, architectural: 16 };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains('8') && s.contains("16"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(EmuError::Malformed { index: 0, what: "no mem" });
        assert!(e.to_string().contains("malformed"));
    }
}
