//! Architectural machine state.

use mom3d_core::DRegFile;
use mom3d_isa::{arch, AccReg, Gpr, MmxReg, MomReg};
use mom3d_mem::MainMemory;

/// The complete architectural state of the modeled machine: scalar,
/// µSIMD, MOM 2D, 3D and accumulator registers, the `VL`/`VS` registers,
/// and main memory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Machine {
    gprs: [u64; arch::GPR_COUNT],
    mmx: [u64; arch::MMX_LOGICAL_REGS],
    mom: [[u64; arch::MOM_ELEMS]; arch::MOM_LOGICAL_REGS],
    accs: [i128; arch::ACC_LOGICAL_REGS],
    dfile: DRegFile,
    vl: u8,
    vs: i64,
    /// Byte-addressable main memory.
    pub mem: MainMemory,
}

impl Machine {
    /// A machine with zeroed registers, `VL = 16`, `VS = 8`, and empty
    /// memory.
    pub fn new() -> Self {
        Machine { vl: arch::VL_MAX, vs: 8, ..Default::default() }
    }

    /// Reads a scalar register.
    pub fn gpr(&self, r: Gpr) -> u64 {
        self.gprs[r.index() as usize]
    }

    /// Writes a scalar register.
    pub fn set_gpr(&mut self, r: Gpr, v: u64) {
        self.gprs[r.index() as usize] = v;
    }

    /// Reads a µSIMD register.
    pub fn mmx(&self, r: MmxReg) -> u64 {
        self.mmx[r.index() as usize]
    }

    /// Writes a µSIMD register.
    pub fn set_mmx(&mut self, r: MmxReg, v: u64) {
        self.mmx[r.index() as usize] = v;
    }

    /// Reads element `e` of a MOM register.
    ///
    /// # Panics
    ///
    /// Panics if `e >= 16`.
    pub fn mom(&self, r: MomReg, e: usize) -> u64 {
        self.mom[r.index() as usize][e]
    }

    /// All 16 elements of a MOM register.
    pub fn mom_elems(&self, r: MomReg) -> &[u64; arch::MOM_ELEMS] {
        &self.mom[r.index() as usize]
    }

    /// Writes element `e` of a MOM register.
    ///
    /// # Panics
    ///
    /// Panics if `e >= 16`.
    pub fn set_mom(&mut self, r: MomReg, e: usize, v: u64) {
        self.mom[r.index() as usize][e] = v;
    }

    /// Reads an accumulator.
    pub fn acc(&self, r: AccReg) -> i128 {
        self.accs[r.index() as usize]
    }

    /// Writes an accumulator.
    pub fn set_acc(&mut self, r: AccReg, v: i128) {
        self.accs[r.index() as usize] = v;
    }

    /// The 3D register file (shared with `mom3d-core` semantics).
    pub fn dfile(&self) -> &DRegFile {
        &self.dfile
    }

    /// Mutable access to the 3D register file.
    pub fn dfile_mut(&mut self) -> &mut DRegFile {
        &mut self.dfile
    }

    /// Architectural vector length.
    pub fn vl(&self) -> u8 {
        self.vl
    }

    /// Sets the architectural vector length.
    ///
    /// # Panics
    ///
    /// Panics if `vl` is zero or exceeds 16.
    pub fn set_vl(&mut self, vl: u8) {
        assert!((1..=arch::VL_MAX).contains(&vl), "VL out of range");
        self.vl = vl;
    }

    /// Architectural vector stride (bytes).
    pub fn vs(&self) -> i64 {
        self.vs
    }

    /// Sets the architectural vector stride.
    pub fn set_vs(&mut self, vs: i64) {
        self.vs = vs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_machine_defaults() {
        let m = Machine::new();
        assert_eq!(m.vl(), 16);
        assert_eq!(m.vs(), 8);
        assert_eq!(m.gpr(Gpr::new(5)), 0);
        assert_eq!(m.mom(MomReg::new(3), 15), 0);
    }

    #[test]
    fn register_rw() {
        let mut m = Machine::new();
        m.set_gpr(Gpr::new(1), 42);
        m.set_mmx(MmxReg::new(2), 0xFF);
        m.set_mom(MomReg::new(3), 7, 0xABCD);
        m.set_acc(AccReg::new(0), -5);
        assert_eq!(m.gpr(Gpr::new(1)), 42);
        assert_eq!(m.mmx(MmxReg::new(2)), 0xFF);
        assert_eq!(m.mom(MomReg::new(3), 7), 0xABCD);
        assert_eq!(m.acc(AccReg::new(0)), -5);
    }

    #[test]
    #[should_panic(expected = "VL out of range")]
    fn vl_range_enforced() {
        Machine::new().set_vl(17);
    }
}
