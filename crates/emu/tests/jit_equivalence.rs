//! Differential tests: the trace-specializing executor against the
//! per-instruction interpreter oracle.
//!
//! Every case builds one trace and one pre-seeded machine, runs the
//! trace through both `Emulator::run` (the JIT path) and
//! `Emulator::run_interp` (the oracle), and requires the two to agree
//! on *everything*: the `Result` (including the error variant and the
//! failing instruction's index), the complete architectural state
//! (`Machine` equality covers registers, accumulators, the 3D register
//! file with its pointers, VL/VS, and memory), the sorted resident
//! pages, and the FNV digest over those pages.
//!
//! The property tests generate random traces covering every opcode
//! class — including mid-trace `setvl`/`setvs` and branches (run
//! boundaries), long scalar stretches (pair fusion), page-straddling
//! and negative-stride memory, and randomly injected malformed or
//! VL/VS-corrupted instructions. The explicit tests then pin the error
//! path for each [`EmuError`] variant and each `Malformed` message.

use mom3d_emu::{EmuError, Emulator, Fnv64, Machine};
use mom3d_isa::{
    AccReg, DReg, Gpr, Instruction, IntOp, MemAccess, MmxReg, MomReg, Opcode, ReduceOp, Reg,
    Trace, TraceBuilder, UsimdOp, Width,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Digest of the resident pages, page-order independent of HashMap
/// iteration (pages_sorted is address-ordered).
fn mem_digest(m: &Machine) -> u64 {
    let mut h = Fnv64::new();
    for (base, data) in m.mem.pages_sorted() {
        h.write_u64(base);
        h.write(data);
    }
    h.finish()
}

/// Runs `trace` through the JIT and the interpreter oracle from
/// identical machine states and asserts bit-identical outcomes.
fn assert_equivalent(trace: &Trace, machine: &Machine) {
    let mut jit = Emulator::with_machine(machine.clone());
    let jit_result = jit.run(trace);
    let mut oracle = Emulator::with_machine(machine.clone());
    let oracle_result = oracle.run_interp(trace);

    assert_eq!(jit_result, oracle_result, "JIT and interpreter must return the same Result");
    assert_eq!(
        jit.executed(),
        oracle.executed(),
        "executed-instruction counts must match (faulting instruction included)"
    );
    assert_eq!(
        jit.machine(),
        oracle.machine(),
        "full architectural state must match after {} instructions",
        trace.len()
    );
    let jp = jit.machine().mem.pages_sorted();
    let op = oracle.machine().mem.pages_sorted();
    assert_eq!(
        jp.iter().map(|&(b, _)| b).collect::<Vec<_>>(),
        op.iter().map(|&(b, _)| b).collect::<Vec<_>>(),
        "resident page sets must match"
    );
    assert_eq!(mem_digest(jit.machine()), mem_digest(oracle.machine()), "memory digests");
}

// ---- random program generation --------------------------------------------

const GPRS: u8 = 8;
const MMXS: u8 = 8;
const MOMS: u8 = 8;
const DREGS: u8 = 2;
const ACCS: u8 = 2;

/// Addresses drawn from a small pool: a pre-seeded region, the tail of
/// a page (so 64-bit and block accesses straddle page boundaries), and
/// a never-written region (absent-page reads).
fn addr(rng: &mut SmallRng) -> u64 {
    match rng.gen_range(0u8..4) {
        0 => 0x1000 + rng.gen_range(0u64..0x800),
        1 => 0x1fd0 + rng.gen_range(0u64..0x60), // straddles 0x2000
        2 => 0x2000 + rng.gen_range(0u64..0x800),
        _ => 0x40_0000 + rng.gen_range(0u64..0x100), // absent pages
    }
}

fn usimd_op(rng: &mut SmallRng) -> UsimdOp {
    let w = match rng.gen_range(0u8..4) {
        0 => Width::B8,
        1 => Width::H16,
        2 => Width::W32,
        _ => Width::D64,
    };
    match rng.gen_range(0u8..16) {
        0 => UsimdOp::AddWrap(w),
        1 => UsimdOp::SubWrap(w),
        2 => UsimdOp::AddSatU(w),
        3 => UsimdOp::SubSatS(w),
        4 => UsimdOp::MinU(w),
        5 => UsimdOp::MaxS(w),
        6 => UsimdOp::AbsDiffU(w),
        7 => UsimdOp::SadU8,
        8 => UsimdOp::AvgU(w),
        9 => UsimdOp::MulHighS16,
        10 => UsimdOp::MaddS16,
        11 => UsimdOp::CmpEq(w),
        12 => UsimdOp::AndNot,
        13 => UsimdOp::PackSs16To8,
        // Interleaves reject D64 (panic in both paths); stay narrower.
        14 => UsimdOp::UnpackLo(if w == Width::D64 { Width::W32 } else { w }),
        _ => UsimdOp::UnpackHi(if w == Width::D64 { Width::W32 } else { w }),
    }
}

fn int_op(rng: &mut SmallRng) -> IntOp {
    match rng.gen_range(0u8..12) {
        0 => IntOp::Add,
        1 => IntOp::Sub,
        2 => IntOp::Mul,
        3 => IntOp::And,
        4 => IntOp::Or,
        5 => IntOp::Xor,
        6 => IntOp::Shl,
        7 => IntOp::Shr,
        8 => IntOp::Sar,
        9 => IntOp::SltS,
        10 => IntOp::SltU,
        _ => IntOp::Mov,
    }
}

/// Pushes one randomly chosen instruction; `malformed` injections push
/// raw instructions that must fault identically in both paths.
fn push_random(tb: &mut TraceBuilder, rng: &mut SmallRng) {
    let gpr = |rng: &mut SmallRng| Gpr::new(rng.gen_range(0..GPRS));
    let mmx = |rng: &mut SmallRng| MmxReg::new(rng.gen_range(0..MMXS));
    let mom = |rng: &mut SmallRng| MomReg::new(rng.gen_range(0..MOMS));
    match rng.gen_range(0u8..20) {
        0 => {
            tb.li(gpr(rng), rng.gen_range(-0x1000i64..0x1000));
        }
        1 => {
            let (d, a, b) = (gpr(rng), gpr(rng), gpr(rng));
            tb.alu(int_op(rng), d, a, b);
        }
        2 => {
            let (d, a) = (gpr(rng), gpr(rng));
            tb.alui(int_op(rng), d, a, rng.gen_range(-64i64..64));
        }
        3 => tb.branch(gpr(rng), rng.gen()),
        4 => {
            let bytes = rng.gen_range(1u8..=8);
            let (d, r) = (gpr(rng), gpr(rng));
            tb.load_scalar(d, r, addr(rng), bytes);
        }
        5 => {
            let bytes = rng.gen_range(1u8..=8);
            let (s, r) = (gpr(rng), gpr(rng));
            tb.store_scalar(s, r, addr(rng), bytes);
        }
        6 => {
            let (d, r) = (mmx(rng), gpr(rng));
            tb.movq_load(d, r, addr(rng), Width::B8);
        }
        7 => {
            let (s, r) = (mmx(rng), gpr(rng));
            tb.movq_store(s, r, addr(rng));
        }
        8 => {
            let (d, a, b) = (mmx(rng), mmx(rng), mmx(rng));
            tb.usimd2(usimd_op(rng), d, a, b);
        }
        9 => {
            let (d, a) = (mmx(rng), mmx(rng));
            let sh = rng.gen_range(0i64..8);
            let w = Width::H16;
            match rng.gen_range(0u8..3) {
                0 => tb.usimd2i(UsimdOp::Shl(w), d, a, sh),
                1 => tb.usimd2i(UsimdOp::ShrL(w), d, a, sh),
                _ => tb.usimd2i(UsimdOp::ShrA(w), d, a, sh),
            };
        }
        10 => {
            let (d, s) = (gpr(rng), mmx(rng));
            tb.mmx_to_gpr(d, s);
        }
        11 => tb.set_vl(rng.gen_range(1u8..=16)),
        12 => tb.set_vs([-16i64, -8, 1, 3, 8, 16, 64][rng.gen_range(0usize..7)]),
        13 => {
            let (d, r) = (mom(rng), gpr(rng));
            let a = addr(rng);
            tb.vload(d, r, a);
        }
        14 => {
            let (s, r) = (mom(rng), gpr(rng));
            let a = addr(rng);
            tb.vstore(s, r, a);
        }
        15 => {
            let (d, a, b) = (mom(rng), mom(rng), mom(rng));
            tb.vop2(usimd_op(rng), d, a, b);
        }
        16 => {
            let acc = AccReg::new(rng.gen_range(0..ACCS));
            let (a, b) = (mom(rng), mom(rng));
            let op = match rng.gen_range(0u8..4) {
                0 => ReduceOp::SadAccumU8,
                1 => ReduceOp::SumU(Width::B8),
                2 => ReduceOp::SumS(Width::H16),
                _ => ReduceOp::DotS16,
            };
            if rng.gen() {
                tb.clear_acc(acc);
            }
            tb.vreduce(op, acc, a, Some(b));
            if rng.gen() {
                tb.rdacc(gpr(rng), acc);
            }
        }
        17 => {
            let d = DReg::new(rng.gen_range(0..DREGS));
            let r = gpr(rng);
            let a = addr(rng);
            let stride = [-32i64, 1, 3, 16, 64][rng.gen_range(0usize..5)];
            let wwords = rng.gen_range(1u8..=16);
            tb.dvload(d, r, a, stride, wwords, rng.gen());
        }
        18 => {
            let (d, s) = (mom(rng), DReg::new(rng.gen_range(0..DREGS)));
            tb.dvmov(d, s, rng.gen_range(-16i16..=16));
        }
        _ => push_corrupted(tb, rng),
    }
}

/// Raw-pushes an instruction that faults: VL/VS mismatches and every
/// static malformation class. Both paths must report the identical
/// error at the identical index.
fn push_corrupted(tb: &mut TraceBuilder, rng: &mut SmallRng) {
    let vl = tb.vl();
    let vs = tb.vs();
    let bad_vl = if vl == 16 { 1 } else { vl + 1 };
    let instr = match rng.gen_range(0u8..8) {
        // Captured VL differs from the architectural register.
        0 => Instruction::op(Opcode::VLoad, &[Reg::Mom(MomReg::new(0))], &[])
            .with_mem(MemAccess::strided2d(0x1000, vs, bad_vl))
            .with_vl(bad_vl),
        // Captured stride differs from VS.
        1 => Instruction::op(Opcode::VStore, &[], &[Reg::Mom(MomReg::new(0))])
            .with_mem(MemAccess::strided2d(0x1000, vs + 1, vl))
            .with_vl(vl),
        // Memory op with no descriptor.
        2 => Instruction::op(Opcode::LoadScalar, &[Reg::Gpr(Gpr::new(0))], &[]),
        // Wrong destination classes.
        3 => Instruction::op(Opcode::LoadMmx, &[Reg::Gpr(Gpr::new(0))], &[])
            .with_mem(MemAccess::unit64(0x1000)),
        4 => Instruction::op(
            Opcode::IntAlu(IntOp::Add),
            &[Reg::Mom(MomReg::new(0))],
            &[Reg::Gpr(Gpr::new(1))],
        ),
        // Missing sources.
        5 => Instruction::op(Opcode::Usimd(UsimdOp::SadU8), &[Reg::Mmx(MmxReg::new(0))], &[]),
        6 => Instruction::op(Opcode::VCompute(UsimdOp::SadU8), &[Reg::Mom(MomReg::new(0))], &[])
            .with_vl(vl),
        // VLoad with a valid VL/VS but no destination: the error must
        // fire *after* the VL and VS checks pass.
        _ => Instruction::op(Opcode::VLoad, &[], &[])
            .with_mem(MemAccess::strided2d(0x1000, vs, vl))
            .with_vl(vl),
    };
    tb.push(instr);
}

/// A machine with deterministic, seed-dependent memory contents.
fn seeded_machine(rng: &mut SmallRng) -> Machine {
    let mut m = Machine::new();
    let mut bytes = vec![0u8; 0x3000];
    for b in bytes.iter_mut() {
        *b = rng.gen();
    }
    m.mem.write_bytes(0x1000, &bytes);
    m
}

fn random_case(seed: u64, len: usize) -> (Trace, Machine) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let machine = seeded_machine(&mut rng);
    let mut tb = TraceBuilder::new();
    for _ in 0..len {
        push_random(&mut tb, &mut rng);
    }
    (tb.finish(), machine)
}

proptest! {
    /// Random mixed traces over all opcode classes, with injected
    /// corruption: JIT ≡ interpreter on state, memory, digest, errors.
    #[test]
    fn random_traces_match_oracle(seed: u64, len in 1usize..160) {
        let (trace, machine) = random_case(seed, len);
        assert_equivalent(&trace, &machine);
    }

    /// Long all-scalar stretches: maximal pair fusion, no run breaks.
    #[test]
    fn dense_scalar_traces_match_oracle(seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let machine = seeded_machine(&mut rng);
        let mut tb = TraceBuilder::new();
        for _ in 0..rng.gen_range(50usize..300) {
            match rng.gen_range(0u8..3) {
                0 => { tb.li(Gpr::new(rng.gen_range(0..GPRS)), rng.gen_range(-99i64..99)); }
                1 => {
                    let (d, a, b) = (
                        Gpr::new(rng.gen_range(0..GPRS)),
                        Gpr::new(rng.gen_range(0..GPRS)),
                        Gpr::new(rng.gen_range(0..GPRS)),
                    );
                    tb.alu(int_op(&mut rng), d, a, b);
                }
                _ => {
                    let (d, a) = (
                        Gpr::new(rng.gen_range(0..GPRS)),
                        Gpr::new(rng.gen_range(0..GPRS)),
                    );
                    tb.alui(int_op(&mut rng), d, a, rng.gen_range(0i64..63));
                }
            }
        }
        assert_equivalent(&tb.finish(), &machine);
    }

    /// Vector-heavy traces with frequent VL/VS switching: every vector
    /// instruction sits near a run boundary.
    #[test]
    fn vl_vs_thrashing_matches_oracle(seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let machine = seeded_machine(&mut rng);
        let mut tb = TraceBuilder::new();
        for _ in 0..rng.gen_range(10usize..60) {
            tb.set_vl(rng.gen_range(1u8..=16));
            tb.set_vs([-8i64, 1, 8, 24][rng.gen_range(0usize..4)]);
            let r = Gpr::new(0);
            match rng.gen_range(0u8..4) {
                0 => { tb.vload(MomReg::new(rng.gen_range(0..MOMS)), r, addr(&mut rng)); }
                1 => tb.vstore(MomReg::new(rng.gen_range(0..MOMS)), r, addr(&mut rng)),
                2 => {
                    let d = DReg::new(rng.gen_range(0..DREGS));
                    tb.dvload(d, r, addr(&mut rng), 16, rng.gen_range(1u8..=16), rng.gen());
                    tb.dvmov(MomReg::new(rng.gen_range(0..MOMS)), d, rng.gen_range(-8i16..=8));
                }
                _ => {
                    let (d, a, b) = (
                        MomReg::new(rng.gen_range(0..MOMS)),
                        MomReg::new(rng.gen_range(0..MOMS)),
                        MomReg::new(rng.gen_range(0..MOMS)),
                    );
                    tb.vop2(usimd_op(&mut rng), d, a, b);
                }
            }
        }
        assert_equivalent(&tb.finish(), &machine);
    }
}

// ---- pinned error-path parity ---------------------------------------------

/// Asserts both paths fail with exactly `expected` at the same index,
/// with identical post-fault state.
fn assert_both_fail(trace: &Trace, expected: EmuError) {
    let machine = Machine::new();
    let mut jit = Emulator::with_machine(machine.clone());
    assert_eq!(jit.run(trace), Err(expected.clone()), "JIT error");
    let mut oracle = Emulator::with_machine(machine);
    assert_eq!(oracle.run_interp(trace), Err(expected), "interpreter error");
    assert_eq!(jit.machine(), oracle.machine(), "post-fault state");
    assert_eq!(jit.executed(), oracle.executed(), "post-fault executed count");
}

/// Prefix instructions so the fault does not sit at index 0 (the index
/// in the error must be the faulting instruction's, not the run's).
fn with_prefix(instr: Instruction) -> (Trace, usize) {
    let mut tb = TraceBuilder::new();
    tb.li(Gpr::new(1), 7);
    tb.li(Gpr::new(2), 9);
    let index = tb.len();
    tb.push(instr);
    tb.li(Gpr::new(3), 11); // must never execute
    (tb.finish(), index)
}

#[test]
fn vl_mismatch_parity() {
    let i = Instruction::op(Opcode::VLoad, &[Reg::Mom(MomReg::new(0))], &[])
        .with_mem(MemAccess::strided2d(0x100, 8, 4))
        .with_vl(4); // architectural VL is 16
    let (t, index) = with_prefix(i);
    assert_both_fail(&t, EmuError::VlMismatch { index, captured: 4, architectural: 16 });
}

#[test]
fn vs_mismatch_parity() {
    let i = Instruction::op(Opcode::VLoad, &[Reg::Mom(MomReg::new(0))], &[])
        .with_mem(MemAccess::strided2d(0x100, 24, 16)) // architectural VS is 8
        .with_vl(16);
    let (t, index) = with_prefix(i);
    assert_both_fail(&t, EmuError::VsMismatch { index, captured: 24, architectural: 8 });
}

/// Every `Malformed` message, via the instruction shape that triggers it.
#[test]
fn malformed_parity_all_messages() {
    let mom0 = Reg::Mom(MomReg::new(0));
    let gpr0 = Reg::Gpr(Gpr::new(0));
    let mmx0 = Reg::Mmx(MmxReg::new(0));
    let acc0 = Reg::Acc(AccReg::new(0));
    let dreg0 = Reg::D(DReg::new(0));
    let mem2d = MemAccess::strided2d(0x100, 8, 16);
    let mem3d = MemAccess::strided3d(0x100, 8, 16, 2);
    let cases: Vec<(Instruction, &'static str)> = vec![
        (Instruction::op(Opcode::LoadScalar, &[gpr0], &[]), "missing memory descriptor"),
        (
            Instruction::op(Opcode::LoadScalar, &[mmx0], &[])
                .with_mem(MemAccess::scalar(0x100, 4)),
            "gpr destination",
        ),
        (
            Instruction::op(Opcode::StoreScalar, &[], &[mmx0])
                .with_mem(MemAccess::scalar(0x100, 4)),
            "gpr source",
        ),
        (
            Instruction::op(Opcode::LoadMmx, &[gpr0], &[]).with_mem(MemAccess::unit64(0x100)),
            "mmx destination",
        ),
        (
            Instruction::op(Opcode::StoreMmx, &[], &[gpr0]).with_mem(MemAccess::unit64(0x100)),
            "mmx source",
        ),
        (Instruction::op(Opcode::Usimd(UsimdOp::SadU8), &[gpr0], &[mmx0]), "mmx destination"),
        (Instruction::op(Opcode::Usimd(UsimdOp::SadU8), &[mmx0], &[gpr0]), "usimd source"),
        (
            Instruction::op(Opcode::VLoad, &[], &[]).with_vl(16),
            "missing memory descriptor",
        ),
        (
            Instruction::op(Opcode::VLoad, &[gpr0], &[]).with_mem(mem2d).with_vl(16),
            "mom destination",
        ),
        (
            Instruction::op(Opcode::VStore, &[], &[gpr0]).with_mem(mem2d).with_vl(16),
            "mom source",
        ),
        (
            Instruction::op(Opcode::VCompute(UsimdOp::SadU8), &[gpr0], &[mom0]).with_vl(16),
            "mom destination",
        ),
        (
            Instruction::op(Opcode::VCompute(UsimdOp::SadU8), &[mom0], &[mmx0]).with_vl(16),
            "vector source",
        ),
        (
            Instruction::op(Opcode::VReduce(ReduceOp::SadAccumU8), &[gpr0], &[mom0]).with_vl(16),
            "accumulator destination",
        ),
        (
            Instruction::op(Opcode::VReduce(ReduceOp::SadAccumU8), &[acc0], &[gpr0]).with_vl(16),
            "reduce source",
        ),
        (Instruction::op(Opcode::ReadAcc, &[acc0], &[acc0]), "gpr destination"),
        (Instruction::op(Opcode::ReadAcc, &[gpr0], &[gpr0]), "accumulator source"),
        (
            Instruction::op(Opcode::DvLoad, &[dreg0], &[]).with_vl(16),
            "missing memory descriptor",
        ),
        (
            Instruction::op(Opcode::DvLoad, &[mom0], &[]).with_mem(mem3d).with_vl(16),
            "3d destination",
        ),
        (Instruction::op(Opcode::DvMov, &[gpr0], &[dreg0]).with_vl(16), "mom destination"),
        (Instruction::op(Opcode::DvMov, &[mom0], &[mom0]).with_vl(16), "3d source"),
        (Instruction::op(Opcode::IntAlu(IntOp::Add), &[mom0], &[gpr0]), "int destination class"),
        (Instruction::op(Opcode::IntAlu(IntOp::Add), &[], &[gpr0]), "missing int destination"),
    ];
    for (instr, what) in cases {
        let (t, index) = with_prefix(instr);
        assert_both_fail(&t, EmuError::Malformed { index, what });
    }
}

/// A fault mid-trace must leave the state changes of every earlier
/// instruction visible — including when the fault was detectable at
/// decode time (errors are lazy, not eager).
#[test]
fn lazy_fault_preserves_prior_state() {
    let mut tb = TraceBuilder::new();
    tb.li(Gpr::new(1), 41);
    tb.alui(IntOp::Add, Gpr::new(1), Gpr::new(1), 1);
    tb.store_scalar(Gpr::new(1), Gpr::new(0), 0x500, 8);
    let index = tb.len();
    tb.push(Instruction::op(Opcode::LoadScalar, &[Reg::Gpr(Gpr::new(2))], &[]));
    tb.li(Gpr::new(3), 99); // unreachable
    let t = tb.finish();

    let mut jit = Emulator::new();
    let err = jit.run(&t).unwrap_err();
    assert_eq!(err, EmuError::Malformed { index, what: "missing memory descriptor" });
    assert_eq!(jit.machine().gpr(Gpr::new(1)), 42, "prior ALU results must be applied");
    assert_eq!(jit.machine().mem.read_u64(0x500), 42, "prior stores must be applied");
    assert_eq!(jit.machine().gpr(Gpr::new(3)), 0, "instructions after the fault must not run");
    assert_eq!(jit.executed(), index as u64 + 1, "faulting instruction counts as executed");

    let mut oracle = Emulator::new();
    assert_eq!(oracle.run_interp(&t), Err(err));
    assert_eq!(jit.machine(), oracle.machine());
}

/// The fused scalar-pair path must not skip the error accounting of the
/// instructions around it: a fault right after a fused pair reports the
/// correct index.
#[test]
fn fault_index_after_fused_pair() {
    let mut tb = TraceBuilder::new();
    tb.li(Gpr::new(1), 1); // these two fuse
    tb.li(Gpr::new(2), 2);
    let index = tb.len();
    tb.push(Instruction::op(Opcode::IntAlu(IntOp::Add), &[], &[]));
    let t = tb.finish();
    assert_both_fail(&t, EmuError::Malformed { index, what: "missing int destination" });
}
