//! End-to-end validation of the §5.1 memory-vectorizer pass: a rewritten
//! trace must leave identical architectural state (MOM registers, GPRs,
//! memory) to the original 2D trace.

use mom3d_core::{vectorize, VectorizeConfig};
use mom3d_emu::Emulator;
use mom3d_isa::{AccReg, Gpr, MomReg, ReduceOp, Trace, TraceBuilder, UsimdOp, Width};

/// Runs a trace on a machine pre-loaded with a deterministic byte ramp.
fn run_on_ramp(trace: &Trace) -> Emulator {
    let mut emu = Emulator::new();
    for i in 0..64 * 1024u64 {
        emu.machine_mut()
            .mem
            .write_u8(0x1_0000 + i, ((i * 31 + 7) % 253) as u8);
    }
    emu.run(trace).expect("trace executes");
    emu
}

fn assert_same_outcome(original: &Trace, rewritten: &Trace) {
    let a = run_on_ramp(original);
    let b = run_on_ramp(rewritten);
    for r in MomReg::all() {
        assert_eq!(a.machine().mom_elems(r), b.machine().mom_elems(r), "MOM register {r}");
    }
    for r in Gpr::all() {
        assert_eq!(a.machine().gpr(r), b.machine().gpr(r), "GPR {r}");
    }
    for r in AccReg::all() {
        assert_eq!(a.machine().acc(r), b.machine().acc(r), "accumulator {r}");
    }
    // Spot-check memory (stores must land identically).
    for addr in (0x1_0000u64..0x1_4000).step_by(8) {
        assert_eq!(a.machine().mem.read_u64(addr), b.machine().mem.read_u64(addr), "@{addr:#x}");
    }
}

/// Motion-estimation shape: candidate loads 1 byte apart with SAD
/// reductions — the paper's Figure 1/4 kernel.
fn motion_estimation_trace(candidates: usize, rows: u8, width: i64) -> Trace {
    let mut tb = TraceBuilder::new();
    tb.set_vl(rows);
    tb.set_vs(width);
    let blk2 = tb.li(Gpr::new(2), 0x2_0000);
    tb.vload(MomReg::new(1), blk2, 0x2_0000); // reference block (invariant)
    let blk1 = tb.li(Gpr::new(1), 0x1_0000);
    for k in 0..candidates as u64 {
        tb.vload(MomReg::new(0), blk1, 0x1_0000 + k);
        tb.clear_acc(AccReg::new(0));
        tb.vreduce(ReduceOp::SadAccumU8, AccReg::new(0), MomReg::new(0), Some(MomReg::new(1)));
        tb.rdacc(Gpr::new(10), AccReg::new(0));
        tb.alu(mom3d_isa::IntOp::SltU, Gpr::new(11), Gpr::new(10), Gpr::new(12));
        tb.branch(Gpr::new(11), k % 3 == 0);
    }
    tb.finish()
}

#[test]
fn me_pattern_equivalent_after_vectorization() {
    let original = motion_estimation_trace(32, 8, 640);
    let (rewritten, report) = vectorize(&original, &VectorizeConfig::default());
    assert!(report.groups_converted >= 1);
    assert!(report.loads_converted >= 32);
    assert_same_outcome(&original, &rewritten);
}

#[test]
fn dense_gsm_pattern_equivalent() {
    // Dense streams (stride 8) with 2-byte lag steps.
    let mut tb = TraceBuilder::new();
    tb.set_vl(10);
    tb.set_vs(8);
    let b = tb.li(Gpr::new(1), 0x1_0000);
    for lag in 0..40u64 {
        tb.vload_w(MomReg::new(0), b, 0x1_0000 + 2 * lag, Width::H16);
        tb.vop2(UsimdOp::MaddS16, MomReg::new(2), MomReg::new(0), MomReg::new(1));
    }
    let original = tb.finish();
    let (rewritten, report) = vectorize(&original, &VectorizeConfig::default());
    assert!(report.groups_converted >= 1, "report: {report:?}");
    assert_same_outcome(&original, &rewritten);
}

#[test]
fn store_interleaved_pattern_stays_correct() {
    // Loads with an intervening store *into* the window: the pass must
    // split the group, and the result must still be bit-exact.
    let mut tb = TraceBuilder::new();
    tb.set_vl(4);
    tb.set_vs(256);
    let b = tb.li(Gpr::new(1), 0x1_0000);
    for k in 0..6u64 {
        tb.vload(MomReg::new(k as u8), b, 0x1_0000 + k);
    }
    let v = tb.li(Gpr::new(3), 0xAB);
    tb.store_scalar(v, b, 0x1_0000 + 2, 1); // clobbers a byte in the window
    for k in 6..12u64 {
        tb.vload(MomReg::new(k as u8), b, 0x1_0000 + k);
    }
    let original = tb.finish();
    let (rewritten, report) = vectorize(&original, &VectorizeConfig::default());
    assert_eq!(report.store_conflicts, 1);
    assert!(report.groups_converted >= 2);
    assert_same_outcome(&original, &rewritten);
}

#[test]
fn unconvertible_trace_is_unchanged() {
    // Wide consecutive rows (jpeg_decode shape): delta 128 > element span.
    let mut tb = TraceBuilder::new();
    tb.set_vl(8);
    tb.set_vs(8);
    let b = tb.li(Gpr::new(1), 0x1_0000);
    for k in 0..8u64 {
        tb.vload(MomReg::new(0), b, 0x1_0000 + 128 * k);
        tb.vop2i(UsimdOp::ShrL(Width::H16), MomReg::new(1), MomReg::new(0), 2);
    }
    let original = tb.finish();
    let (rewritten, report) = vectorize(&original, &VectorizeConfig::default());
    assert_eq!(report.groups_converted, 0);
    assert_eq!(rewritten.len(), original.len());
    assert_same_outcome(&original, &rewritten);
}

#[test]
fn two_interleaved_windows_use_both_dregs() {
    // Current block (invariant) + candidate block (delta 1), interleaved
    // like real motion estimation: needs both logical 3D registers.
    let mut tb = TraceBuilder::new();
    tb.set_vl(8);
    tb.set_vs(640);
    let a = tb.li(Gpr::new(1), 0x1_0000);
    let c = tb.li(Gpr::new(2), 0x4_0000);
    for k in 0..16u64 {
        tb.vload(MomReg::new(0), a, 0x1_0000 + k); // moving window
        tb.vload(MomReg::new(1), c, 0x4_0000); // invariant
        tb.vop2(UsimdOp::AbsDiffU(Width::B8), MomReg::new(2), MomReg::new(0), MomReg::new(1));
    }
    let original = tb.finish();
    let (rewritten, report) = vectorize(&original, &VectorizeConfig::default());
    assert_eq!(report.groups_converted, 2);
    assert_eq!(report.loads_converted, 32);
    assert_same_outcome(&original, &rewritten);
}
