//! Sanity invariants of the timing model, checked across the whole
//! workload matrix: conservation laws the simulator must obey no matter
//! the configuration.

use mom3d::cpu::{MemorySystemKind, Metrics, Processor, ProcessorConfig};
use mom3d::kernels::{IsaVariant, Workload, WorkloadKind};

const MEMS: [MemorySystemKind; 3] = [
    MemorySystemKind::Ideal,
    MemorySystemKind::MultiBanked,
    MemorySystemKind::VectorCache,
];

fn sim(wl: &Workload, mem: MemorySystemKind, warm: bool) -> Metrics {
    let base = match wl.variant() {
        IsaVariant::Mmx => ProcessorConfig::mmx(),
        _ => ProcessorConfig::mom(),
    };
    Processor::new(base.with_memory(mem).with_warm_caches(warm)).run(wl.trace()).unwrap()
}

#[test]
fn every_instruction_commits_exactly_once() {
    for kind in WorkloadKind::ALL {
        for variant in [IsaVariant::Mmx, IsaVariant::Mom] {
            let wl = Workload::build_small(kind, variant, 2).unwrap();
            for mem in MEMS {
                let m = sim(&wl, mem, true);
                assert_eq!(
                    m.instructions,
                    wl.trace().len() as u64,
                    "{kind} {variant} {mem:?}"
                );
            }
        }
    }
}

#[test]
fn ipc_is_bounded_by_fetch_width() {
    for kind in WorkloadKind::ALL {
        let wl = Workload::build_small(kind, IsaVariant::Mom, 2).unwrap();
        for mem in MEMS {
            let m = sim(&wl, mem, true);
            assert!(m.ipc() <= 8.0 + 1e-9, "{kind} {mem:?}: IPC {}", m.ipc());
            assert!(m.cycles > 0);
        }
    }
}

#[test]
fn warming_never_slows_a_run() {
    for kind in [WorkloadKind::Mpeg2Encode, WorkloadKind::JpegDecode] {
        let wl = Workload::build_small(kind, IsaVariant::Mom, 2).unwrap();
        let cold = sim(&wl, MemorySystemKind::VectorCache, false).cycles;
        let warm = sim(&wl, MemorySystemKind::VectorCache, true).cycles;
        assert!(warm <= cold, "{kind}: warm {warm} vs cold {cold}");
    }
}

#[test]
fn warm_runs_have_high_hit_rates() {
    // The paper reports 90-99% hit rates; warmed kernels sit at the top
    // of that range because the working sets fit in the 2MB L2.
    for kind in WorkloadKind::ALL {
        let wl = Workload::build_small(kind, IsaVariant::Mom, 2).unwrap();
        let m = sim(&wl, MemorySystemKind::VectorCache, true);
        assert!(m.l2_hit_rate() > 0.95, "{kind}: hit rate {:.3}", m.l2_hit_rate());
    }
}

#[test]
fn ideal_memory_is_a_lower_bound() {
    for kind in WorkloadKind::ALL {
        for variant in [IsaVariant::Mmx, IsaVariant::Mom] {
            let wl = Workload::build_small(kind, variant, 2).unwrap();
            let ideal = sim(&wl, MemorySystemKind::Ideal, true).cycles;
            for mem in [MemorySystemKind::MultiBanked, MemorySystemKind::VectorCache] {
                assert!(
                    sim(&wl, mem, true).cycles >= ideal,
                    "{kind} {variant} {mem:?}: beat ideal memory"
                );
            }
        }
    }
}

#[test]
fn words_transferred_are_memory_system_independent_for_2d() {
    // The same trace moves the same number of words regardless of how
    // the ports schedule them.
    for kind in WorkloadKind::ALL {
        let wl = Workload::build_small(kind, IsaVariant::Mom, 2).unwrap();
        let mb = sim(&wl, MemorySystemKind::MultiBanked, true).vec_words;
        let vc = sim(&wl, MemorySystemKind::VectorCache, true).vec_words;
        assert_eq!(mb, vc, "{kind}");
    }
}

#[test]
fn l2_latency_monotonicity() {
    let wl = Workload::build_small(WorkloadKind::Mpeg2Encode, IsaVariant::Mom, 2).unwrap();
    let mut last = 0;
    for l2 in [20, 40, 60] {
        let cfg = ProcessorConfig::mom()
            .with_memory(MemorySystemKind::VectorCache)
            .with_l2_latency(l2)
            .with_warm_caches(true);
        let cycles = Processor::new(cfg).run(wl.trace()).unwrap().cycles;
        assert!(cycles >= last, "cycles must not drop as latency rises");
        last = cycles;
    }
}

#[test]
fn coherence_invalidations_fire_when_sides_share_lines() {
    // MOM workloads mix scalar result stores with vector frame traffic;
    // the exclusive-bit protocol must be exercised somewhere.
    let mut total = 0;
    for kind in WorkloadKind::ALL {
        let wl = Workload::build_small(kind, IsaVariant::Mom, 2).unwrap();
        total += sim(&wl, MemorySystemKind::VectorCache, false).coherence_invalidations;
    }
    assert!(total > 0, "no coherence activity across the whole suite");
}

#[test]
fn metrics_display_is_informative() {
    let wl = Workload::build_small(WorkloadKind::GsmEncode, IsaVariant::Mom, 2).unwrap();
    let m = sim(&wl, MemorySystemKind::VectorCache, true);
    let s = m.to_string();
    assert!(s.contains("cycles") && s.contains("IPC"), "{s}");
}
