//! Golden verification digests pinned from the pre-JIT interpreter.
//!
//! These 15 values (5 workloads × 3 ISA variants, full geometry,
//! seed 7) were captured by running `Workload::verify_digested` on the
//! per-instruction interpreter **before** the trace-specializing
//! executor existed. The emulator's `run` path — whatever execution
//! strategy it uses — must keep reproducing them bit for bit: a
//! divergence here means the emulator changed architectural behaviour,
//! not just speed.
//!
//! The three variants of one workload share a digest by construction
//! (the digest is over the verified output regions, and all variants
//! must compute the same result), but each (workload, variant) pair is
//! pinned separately so a single-variant regression names its culprit.

use mom3d_kernels::{IsaVariant, Workload, WorkloadKind};

const SEED: u64 = 7;

/// (workload, variant, digest) pinned from the pre-JIT interpreter.
const GOLDEN: [(WorkloadKind, IsaVariant, u64); 15] = [
    (WorkloadKind::JpegEncode, IsaVariant::Mmx, 0xc12c8e2645ee1759),
    (WorkloadKind::JpegEncode, IsaVariant::Mom, 0xc12c8e2645ee1759),
    (WorkloadKind::JpegEncode, IsaVariant::Mom3d, 0xc12c8e2645ee1759),
    (WorkloadKind::JpegDecode, IsaVariant::Mmx, 0x56b2b6bbea65dde2),
    (WorkloadKind::JpegDecode, IsaVariant::Mom, 0x56b2b6bbea65dde2),
    (WorkloadKind::JpegDecode, IsaVariant::Mom3d, 0x56b2b6bbea65dde2),
    (WorkloadKind::Mpeg2Decode, IsaVariant::Mmx, 0xc08a961463b6c0b5),
    (WorkloadKind::Mpeg2Decode, IsaVariant::Mom, 0xc08a961463b6c0b5),
    (WorkloadKind::Mpeg2Decode, IsaVariant::Mom3d, 0xc08a961463b6c0b5),
    (WorkloadKind::Mpeg2Encode, IsaVariant::Mmx, 0x5180ba8da5ce1ef3),
    (WorkloadKind::Mpeg2Encode, IsaVariant::Mom, 0x5180ba8da5ce1ef3),
    (WorkloadKind::Mpeg2Encode, IsaVariant::Mom3d, 0x5180ba8da5ce1ef3),
    (WorkloadKind::GsmEncode, IsaVariant::Mmx, 0x024efc03bb9860b0),
    (WorkloadKind::GsmEncode, IsaVariant::Mom, 0x024efc03bb9860b0),
    (WorkloadKind::GsmEncode, IsaVariant::Mom3d, 0x024efc03bb9860b0),
];

#[test]
fn all_fifteen_digests_match_the_pre_jit_interpreter() {
    let mut divergences = Vec::new();
    for (kind, variant, expected) in GOLDEN {
        let wl = Workload::build(kind, variant, SEED).expect("workload builds");
        let got = wl.verify_digested().unwrap_or_else(|e| {
            panic!("{kind:?}/{variant:?} no longer verifies: {e}");
        });
        if got != expected {
            divergences.push(format!(
                "{kind:?}/{variant:?}: got {got:#018x}, pinned {expected:#018x}"
            ));
        }
    }
    assert!(
        divergences.is_empty(),
        "emulator output diverged from the pre-JIT interpreter:\n{}",
        divergences.join("\n")
    );
}

#[test]
fn golden_table_covers_every_workload_and_variant() {
    for kind in WorkloadKind::ALL {
        for variant in IsaVariant::ALL {
            assert!(
                GOLDEN.iter().any(|&(k, v, _)| k == kind && v == variant),
                "no golden digest pinned for {kind:?}/{variant:?}"
            );
        }
    }
    assert_eq!(GOLDEN.len(), WorkloadKind::ALL.len() * IsaVariant::ALL.len());
}
