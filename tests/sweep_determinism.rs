//! The parallel sweep engine must be a pure optimization: identical
//! [`Metrics`] to the serial `Runner::metrics` path, bit for bit, for
//! every cell, at any worker count.

use mom3d::cpu::{BackendId, MemorySystemKind, Metrics};
use mom3d::kernels::{IsaVariant, WorkloadKind};
use mom3d_bench::{sweep, Runner, SimKey};

const SEED: u64 = 11;

/// A small but representative grid: two workloads (one with 3D
/// patterns, one without), every paper memory system plus the
/// registry-only DRAM-burst backend, and a non-default L2 latency.
fn grid() -> Vec<SimKey> {
    let mut cells = Vec::new();
    for kind in [WorkloadKind::GsmEncode, WorkloadKind::JpegDecode] {
        for (variant, memory) in [
            (IsaVariant::Mom, MemorySystemKind::Ideal.id()),
            (IsaVariant::Mom, MemorySystemKind::MultiBanked.id()),
            (IsaVariant::Mom, MemorySystemKind::VectorCache.id()),
            (IsaVariant::Mom3d, MemorySystemKind::VectorCache3d.id()),
            (IsaVariant::Mom, BackendId::new("dram-burst")),
        ] {
            cells.push(SimKey { kind, variant, memory, l2_latency: 20 });
        }
        cells.push(SimKey {
            kind,
            variant: IsaVariant::Mom,
            memory: MemorySystemKind::VectorCache.into(),
            l2_latency: 60,
        });
    }
    cells
}

fn serial_metrics(cells: &[SimKey]) -> Vec<Metrics> {
    let mut r = Runner::small(SEED);
    cells.iter().map(|c| r.metrics(c.kind, c.variant, c.memory, c.l2_latency)).collect()
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let cells = grid();
    let serial = serial_metrics(&cells);

    let mut r = Runner::small(SEED);
    let report = sweep::run(&mut r, &cells, 4);
    assert!(report.threads >= 2, "test must actually exercise multiple workers");
    assert_eq!(report.cells.len(), cells.len());
    assert_eq!(report.fresh_cells(), cells.len(), "nothing was cached beforehand");

    for (cell, expected) in report.cells.iter().zip(&serial) {
        assert_eq!(
            cell.metrics, *expected,
            "parallel sweep diverged from serial path on {:?}",
            cell.key
        );
        // The cache the figure formatters read must agree too.
        assert_eq!(r.cached_metrics(&cell.key), Some(*expected));
    }
}

#[test]
fn one_worker_and_many_workers_agree() {
    let cells = grid();
    let mut r1 = Runner::small(SEED);
    let mut r4 = Runner::small(SEED);
    let one = sweep::run(&mut r1, &cells, 1);
    let four = sweep::run(&mut r4, &cells, 4);
    for (a, b) in one.cells.iter().zip(&four.cells) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.metrics, b.metrics, "thread count changed metrics of {:?}", a.key);
    }
    // Whole-sweep roll-ups therefore agree as well.
    assert_eq!(one.total(), four.total());
}

#[test]
fn second_sweep_is_served_from_cache() {
    let cells = grid();
    let mut r = Runner::small(SEED);
    let first = sweep::run(&mut r, &cells, 2);
    let second = sweep::run(&mut r, &cells, 2);
    assert_eq!(second.fresh_cells(), 0);
    for (a, b) in first.cells.iter().zip(&second.cells) {
        assert_eq!(a.metrics, b.metrics);
        assert!(b.reused);
    }
}
