//! Tier-1 smoke test — the regression gate every future PR must keep
//! green.
//!
//! For each of the 5 workloads × 3 ISA variants it builds the workload,
//! runs the functional emulator, and demands that the emulator and the
//! timing simulator agree on architectural results:
//!
//! * the emulated memory image matches the workload's scalar Rust
//!   reference bit-for-bit on every declared output region;
//! * the timing simulator commits exactly the instructions the emulator
//!   executed (same dynamic instruction stream, every instruction
//!   exactly once);
//! * the simulator's per-class instruction accounting (scalar memory,
//!   vector memory, `3dvmov`, packed ops) reproduces the trace's own
//!   statistics, so the two sides agree not just on counts but on what
//!   each instruction was.

use mom3d::cpu::{MemorySystemKind, Processor, ProcessorConfig};
use mom3d::emu::Emulator;
use mom3d::kernels::{IsaVariant, Workload, WorkloadKind};

const SEED: u64 = 11;

fn config_for(variant: IsaVariant) -> ProcessorConfig {
    let (base, mem) = match variant {
        IsaVariant::Mmx => (ProcessorConfig::mmx(), MemorySystemKind::VectorCache),
        IsaVariant::Mom => (ProcessorConfig::mom(), MemorySystemKind::VectorCache),
        IsaVariant::Mom3d => (ProcessorConfig::mom(), MemorySystemKind::VectorCache3d),
    };
    base.with_memory(mem)
}

#[test]
fn all_workloads_and_variants_smoke() {
    for kind in WorkloadKind::ALL {
        for variant in IsaVariant::ALL {
            let wl = Workload::build_small(kind, variant, SEED)
                .unwrap_or_else(|e| panic!("{kind} {variant}: build failed: {e}"));
            let trace = wl.trace();
            let stats = trace.stats();

            // Functional side: emulate and check the scalar reference.
            let mut emu = Emulator::with_machine(wl.machine());
            emu.run(trace).unwrap_or_else(|e| panic!("{kind} {variant}: emulation failed: {e}"));
            for check in wl.checks() {
                let actual = emu.machine().mem.read_bytes(check.addr, check.expected.len());
                assert_eq!(
                    actual, check.expected,
                    "{kind} {variant}: emulator diverged from scalar reference on {}",
                    check.what
                );
            }
            assert_eq!(
                emu.executed(),
                trace.len() as u64,
                "{kind} {variant}: emulator must execute the whole trace"
            );

            // Timing side: the simulator must commit the same stream.
            let metrics = Processor::new(config_for(variant))
                .run(trace)
                .unwrap_or_else(|e| panic!("{kind} {variant}: simulation failed: {e}"));
            assert_eq!(
                metrics.instructions,
                emu.executed(),
                "{kind} {variant}: simulator and emulator disagree on committed instructions"
            );
            assert!(metrics.cycles > 0, "{kind} {variant}: zero-cycle simulation");

            // Both sides must agree on what the instructions were.
            assert_eq!(
                metrics.scalar_mem_instrs,
                stats.mem_scalar,
                "{kind} {variant}: scalar memory instruction accounting"
            );
            assert_eq!(
                metrics.vec_mem_instrs,
                stats.mem_2d + stats.mem_3d,
                "{kind} {variant}: vector memory instruction accounting"
            );
            assert_eq!(
                metrics.mov3d_instrs, stats.mov_3d,
                "{kind} {variant}: 3dvmov accounting"
            );
            assert_eq!(
                metrics.packed_ops, stats.packed_ops,
                "{kind} {variant}: packed-op accounting"
            );

            // Variant structure: 3D instructions appear exactly where the
            // paper found patterns.
            let has_3d = stats.mem_3d > 0;
            let expect_3d = variant == IsaVariant::Mom3d && kind.has_3d_patterns();
            assert_eq!(
                has_3d, expect_3d,
                "{kind} {variant}: 3D instruction presence (mem_3d = {})",
                stats.mem_3d
            );
        }
    }
}
