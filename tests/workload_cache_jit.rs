//! The workload cache's warm path must be emulator-free: serving an
//! image from disk re-checks its digest over the stored bytes, it never
//! re-executes the trace. With the trace-specializing executor in the
//! verify path, that invariant becomes "a fully-warm sweep runs the JIT
//! zero times" — pinned here via the emulator's process-global
//! [`mom3d::emu::jit_runs`] counter.
//!
//! This test lives in its own integration-test binary on purpose: the
//! counter counts every `Emulator::run` in the process, and the other
//! cache tests (`tests/workload_cache.rs`) verify workloads on
//! concurrent test threads, which would make delta assertions flaky.
//! One test per binary means one process with nothing else running.

use mom3d::cpu::MemorySystemKind;
use mom3d::emu::jit_runs;
use mom3d::kernels::{IsaVariant, WorkloadKind};
use mom3d_bench::{sweep, Runner, SimKey, WorkloadCache};
use std::path::PathBuf;

const SEED: u64 = 11;

fn temp_cache_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mom3d-workload-cache-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn fully_warm_sweep_runs_the_jit_zero_times() {
    let dir = temp_cache_dir("jit-free-warm");
    // Every workload × variant pair — the full `all --small` matrix —
    // so a warm path that sneaks in even one re-verify is caught no
    // matter which workload family it hides in.
    let cells: Vec<SimKey> = WorkloadKind::ALL
        .iter()
        .flat_map(|&kind| {
            IsaVariant::ALL.iter().map(move |&variant| SimKey {
                kind,
                variant,
                memory: MemorySystemKind::Ideal.into(),
                l2_latency: 20,
            })
        })
        .collect();
    let workload_pairs = cells.len() as u64;

    let mut cold = Runner::small(SEED).with_cache(WorkloadCache::open(&dir));
    let before_cold = jit_runs();
    let cold_report = sweep::run(&mut cold, &cells, 1);
    let cold_delta = jit_runs() - before_cold;
    let cold_stats = cold_report.workload_cache.expect("cache attached");
    assert_eq!(cold_stats.misses, workload_pairs);
    assert!(
        cold_delta >= workload_pairs,
        "the cold sweep verifies every workload through the JIT \
         (expected at least {workload_pairs} runs, counted {cold_delta})"
    );

    let mut warm = Runner::small(SEED).with_cache(WorkloadCache::open(&dir));
    let before_warm = jit_runs();
    let warm_report = sweep::run(&mut warm, &cells, 1);
    let warm_delta = jit_runs() - before_warm;
    let warm_stats = warm_report.workload_cache.expect("cache attached");
    assert_eq!(
        (warm_stats.hits, warm_stats.misses, warm_stats.rejected),
        (workload_pairs, 0, 0),
        "warm run must load every workload from the cache"
    );
    assert_eq!(
        warm_delta, 0,
        "the fully-warm sweep must never invoke the JIT \
         (a cache hit proves a verification that already happened)"
    );

    // Bit-identity of the results rides along for free.
    for (c, w) in cold_report.cells.iter().zip(&warm_report.cells) {
        assert_eq!(c.key, w.key);
        assert_eq!(c.metrics, w.metrics, "{:?}: warm metrics must be bit-identical", c.key);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
