//! Backend-equivalence regression gate for the pluggable-backend
//! refactor (trait + registry replacing the closed `MemorySystemKind`
//! dispatch).
//!
//! `GOLDEN` below was captured by running the *pre-refactor* enum-match
//! simulator (commit 25a2b2a) over reduced-geometry workloads at seed
//! 11: every workload under its paper memory organizations at the
//! default and one non-default L2 latency. The four paper backends must
//! keep producing these metrics bit for bit through the trait/registry
//! path; any intentional timing-model change must re-capture the table
//! (and say so in the PR).
//!
//! The rest of the file covers the registry contract itself: id
//! round-trips (including parameterized `?key=value` ids, by property
//! test), deterministic enumeration order, and the main-memory
//! backends' emulator <-> timing smoke agreement.

use mom3d::cpu::{BackendId, BackendRegistry, MemorySystemKind, Metrics, Processor, ProcessorConfig};
use mom3d::emu::Emulator;
use mom3d::kernels::{IsaVariant, Workload, WorkloadKind};
use mom3d_bench::Runner;
use WorkloadKind::*;
use IsaVariant::*;

const SEED: u64 = 11;

#[rustfmt::skip]
const GOLDEN: [(WorkloadKind, IsaVariant, &str, u32, Metrics); 25] = [
    (JpegEncode, Mom, "ideal", 20, Metrics { cycles: 201, instructions: 611, packed_ops: 6659, vec_mem_instrs: 97, scalar_mem_instrs: 96, port_accesses: 0, l2_activity: 0, vec_words: 776, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 0, l2_hits: 0, l2_misses: 0, l1_accesses: 0, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (JpegEncode, Mom, "multi-banked", 20, Metrics { cycles: 593, instructions: 611, packed_ops: 6659, vec_mem_instrs: 97, scalar_mem_instrs: 96, port_accesses: 386, l2_activity: 776, vec_words: 776, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 91, l2_hits: 412, l2_misses: 0, l1_accesses: 96, coherence_invalidations: 27, dram_row_hits: 0, dram_row_misses: 0 }),
    (JpegEncode, Mom, "vector-cache", 20, Metrics { cycles: 593, instructions: 611, packed_ops: 6659, vec_mem_instrs: 97, scalar_mem_instrs: 96, port_accesses: 386, l2_activity: 386, vec_words: 776, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 91, l2_hits: 412, l2_misses: 0, l1_accesses: 96, coherence_invalidations: 27, dram_row_hits: 0, dram_row_misses: 0 }),
    (JpegEncode, Mom3d, "vector-cache-3d", 20, Metrics { cycles: 389, instructions: 519, packed_ops: 6567, vec_mem_instrs: 67, scalar_mem_instrs: 96, port_accesses: 146, l2_activity: 146, vec_words: 776, mov3d_instrs: 32, mov3d_words: 256, d3_writes: 16, l2_scalar_accesses: 71, l2_hits: 152, l2_misses: 0, l1_accesses: 96, coherence_invalidations: 8, dram_row_hits: 0, dram_row_misses: 0 }),
    (JpegEncode, Mom, "vector-cache", 60, Metrics { cycles: 1553, instructions: 611, packed_ops: 6659, vec_mem_instrs: 97, scalar_mem_instrs: 96, port_accesses: 386, l2_activity: 386, vec_words: 776, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 91, l2_hits: 412, l2_misses: 0, l1_accesses: 96, coherence_invalidations: 27, dram_row_hits: 0, dram_row_misses: 0 }),
    (JpegDecode, Mom, "ideal", 20, Metrics { cycles: 136, instructions: 131, packed_ops: 4195, vec_mem_instrs: 49, scalar_mem_instrs: 0, port_accesses: 0, l2_activity: 0, vec_words: 784, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 0, l2_hits: 0, l2_misses: 0, l1_accesses: 0, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (JpegDecode, Mom, "multi-banked", 20, Metrics { cycles: 307, instructions: 131, packed_ops: 4195, vec_mem_instrs: 49, scalar_mem_instrs: 0, port_accesses: 196, l2_activity: 784, vec_words: 784, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 0, l2_hits: 49, l2_misses: 0, l1_accesses: 0, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (JpegDecode, Mom, "vector-cache", 20, Metrics { cycles: 307, instructions: 131, packed_ops: 4195, vec_mem_instrs: 49, scalar_mem_instrs: 0, port_accesses: 196, l2_activity: 196, vec_words: 784, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 0, l2_hits: 49, l2_misses: 0, l1_accesses: 0, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (JpegDecode, Mom3d, "vector-cache-3d", 20, Metrics { cycles: 307, instructions: 131, packed_ops: 4195, vec_mem_instrs: 49, scalar_mem_instrs: 0, port_accesses: 196, l2_activity: 196, vec_words: 784, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 0, l2_hits: 49, l2_misses: 0, l1_accesses: 0, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (JpegDecode, Mom, "vector-cache", 60, Metrics { cycles: 787, instructions: 131, packed_ops: 4195, vec_mem_instrs: 49, scalar_mem_instrs: 0, port_accesses: 196, l2_activity: 196, vec_words: 784, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 0, l2_hits: 49, l2_misses: 0, l1_accesses: 0, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (Mpeg2Decode, Mom, "ideal", 20, Metrics { cycles: 167, instructions: 263, packed_ops: 4670, vec_mem_instrs: 80, scalar_mem_instrs: 0, port_accesses: 0, l2_activity: 0, vec_words: 640, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 0, l2_hits: 0, l2_misses: 0, l1_accesses: 0, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (Mpeg2Decode, Mom, "multi-banked", 20, Metrics { cycles: 619, instructions: 263, packed_ops: 4670, vec_mem_instrs: 80, scalar_mem_instrs: 0, port_accesses: 520, l2_activity: 640, vec_words: 640, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 0, l2_hits: 288, l2_misses: 0, l1_accesses: 0, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (Mpeg2Decode, Mom, "vector-cache", 20, Metrics { cycles: 659, instructions: 263, packed_ops: 4670, vec_mem_instrs: 80, scalar_mem_instrs: 0, port_accesses: 640, l2_activity: 640, vec_words: 640, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 0, l2_hits: 288, l2_misses: 0, l1_accesses: 0, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (Mpeg2Decode, Mom3d, "vector-cache-3d", 20, Metrics { cycles: 353, instructions: 223, packed_ops: 4630, vec_mem_instrs: 40, scalar_mem_instrs: 0, port_accesses: 320, l2_activity: 320, vec_words: 480, mov3d_instrs: 60, mov3d_words: 480, d3_writes: 160, l2_scalar_accesses: 0, l2_hits: 137, l2_misses: 0, l1_accesses: 0, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (Mpeg2Decode, Mom, "vector-cache", 60, Metrics { cycles: 1383, instructions: 263, packed_ops: 4670, vec_mem_instrs: 80, scalar_mem_instrs: 0, port_accesses: 640, l2_activity: 640, vec_words: 640, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 0, l2_hits: 288, l2_misses: 0, l1_accesses: 0, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (Mpeg2Encode, Mom, "ideal", 20, Metrics { cycles: 394, instructions: 1728, packed_ops: 13824, vec_mem_instrs: 384, scalar_mem_instrs: 24, port_accesses: 0, l2_activity: 0, vec_words: 3072, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 0, l2_hits: 0, l2_misses: 0, l1_accesses: 0, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (Mpeg2Encode, Mom, "multi-banked", 20, Metrics { cycles: 3101, instructions: 1728, packed_ops: 13824, vec_mem_instrs: 384, scalar_mem_instrs: 24, port_accesses: 3072, l2_activity: 3072, vec_words: 3072, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 24, l2_hits: 1560, l2_misses: 0, l1_accesses: 24, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (Mpeg2Encode, Mom, "vector-cache", 20, Metrics { cycles: 3101, instructions: 1728, packed_ops: 13824, vec_mem_instrs: 384, scalar_mem_instrs: 24, port_accesses: 3072, l2_activity: 3072, vec_words: 3072, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 24, l2_hits: 1560, l2_misses: 0, l1_accesses: 24, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (Mpeg2Encode, Mom3d, "vector-cache-3d", 20, Metrics { cycles: 807, instructions: 1571, packed_ops: 13667, vec_mem_instrs: 24, scalar_mem_instrs: 24, port_accesses: 192, l2_activity: 192, vec_words: 384, mov3d_instrs: 384, mov3d_words: 3072, d3_writes: 192, l2_scalar_accesses: 24, l2_hits: 120, l2_misses: 0, l1_accesses: 24, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (Mpeg2Encode, Mom, "vector-cache", 60, Metrics { cycles: 6561, instructions: 1728, packed_ops: 13824, vec_mem_instrs: 384, scalar_mem_instrs: 24, port_accesses: 3072, l2_activity: 3072, vec_words: 3072, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 24, l2_hits: 1560, l2_misses: 0, l1_accesses: 24, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (GsmEncode, Mom, "ideal", 20, Metrics { cycles: 982, instructions: 2965, packed_ops: 15601, vec_mem_instrs: 648, scalar_mem_instrs: 8, port_accesses: 0, l2_activity: 0, vec_words: 6480, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 0, l2_hits: 0, l2_misses: 0, l1_accesses: 0, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (GsmEncode, Mom, "multi-banked", 20, Metrics { cycles: 3745, instructions: 2965, packed_ops: 15601, vec_mem_instrs: 648, scalar_mem_instrs: 8, port_accesses: 1944, l2_activity: 6480, vec_words: 6480, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 8, l2_hits: 1088, l2_misses: 0, l1_accesses: 8, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (GsmEncode, Mom, "vector-cache", 20, Metrics { cycles: 3745, instructions: 2965, packed_ops: 15601, vec_mem_instrs: 648, scalar_mem_instrs: 8, port_accesses: 1944, l2_activity: 1944, vec_words: 6480, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 8, l2_hits: 1088, l2_misses: 0, l1_accesses: 8, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (GsmEncode, Mom3d, "vector-cache-3d", 20, Metrics { cycles: 1017, instructions: 2089, packed_ops: 14725, vec_mem_instrs: 48, scalar_mem_instrs: 8, port_accesses: 312, l2_activity: 312, vec_words: 1280, mov3d_instrs: 324, mov3d_words: 3240, d3_writes: 240, l2_scalar_accesses: 8, l2_hits: 91, l2_misses: 0, l1_accesses: 8, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
    (GsmEncode, Mom, "vector-cache", 60, Metrics { cycles: 10225, instructions: 2965, packed_ops: 15601, vec_mem_instrs: 648, scalar_mem_instrs: 8, port_accesses: 1944, l2_activity: 1944, vec_words: 6480, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 8, l2_hits: 1088, l2_misses: 0, l1_accesses: 8, coherence_invalidations: 0, dram_row_hits: 0, dram_row_misses: 0 }),
];

/// Golden-metric pins for the two zoo backends at their canonical
/// (default-parameter) configurations, captured at their introduction
/// (same seed-11 reduced geometry as `GOLDEN`). The signatures to watch:
/// `hbm-wide` splits its row activity into many hits / few misses
/// (channel parallelism keeps rows open), `pim-vector` moves zero words
/// across the port and counts row-op slices as its only L2 activity.
#[rustfmt::skip]
const GOLDEN_ZOO: [(WorkloadKind, IsaVariant, &str, u32, Metrics); 2] = [
    (JpegEncode, Mom, "hbm-wide", 20, Metrics { cycles: 665, instructions: 611, packed_ops: 6659, vec_mem_instrs: 97, scalar_mem_instrs: 96, port_accesses: 500, l2_activity: 776, vec_words: 776, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 87, l2_hits: 408, l2_misses: 0, l1_accesses: 96, coherence_invalidations: 23, dram_row_hits: 748, dram_row_misses: 28 }),
    (JpegEncode, Mom, "pim-vector", 20, Metrics { cycles: 1170, instructions: 611, packed_ops: 6659, vec_mem_instrs: 97, scalar_mem_instrs: 96, port_accesses: 1156, l2_activity: 192, vec_words: 0, mov3d_instrs: 0, mov3d_words: 0, d3_writes: 0, l2_scalar_accesses: 79, l2_hits: 400, l2_misses: 0, l1_accesses: 96, coherence_invalidations: 15, dram_row_hits: 96, dram_row_misses: 96 }),
];

/// Cycle counts of the *entire* kernel × ISA-variant × registered-backend
/// matrix (reduced geometry, seed 11, default L2 latency), captured from
/// the pre-event-driven cycle-stepped loop (commit 0562e40) right before
/// the scheduler rewrite (zoo backends pinned at their introduction).
/// The event-driven path must keep reproducing every cell bit for bit;
/// the `Mom3d` rows exist only for backends with a 3D register file (the
/// others reject such traces). A deliberate timing-model change must
/// re-capture this table and say so in the PR.
#[rustfmt::skip]
const GOLDEN_CYCLES: [(WorkloadKind, IsaVariant, &str, u64); 80] = [
    (JpegEncode, Mmx, "ideal", 371),
    (JpegEncode, Mmx, "multi-banked", 373),
    (JpegEncode, Mmx, "vector-cache", 373),
    (JpegEncode, Mmx, "vector-cache-3d", 373),
    (JpegEncode, Mmx, "dram-burst", 373),
    (JpegEncode, Mmx, "hbm-wide", 373),
    (JpegEncode, Mmx, "pim-vector", 373),
    (JpegEncode, Mom, "ideal", 201),
    (JpegEncode, Mom, "multi-banked", 593),
    (JpegEncode, Mom, "vector-cache", 593),
    (JpegEncode, Mom, "vector-cache-3d", 593),
    (JpegEncode, Mom, "dram-burst", 621),
    (JpegEncode, Mom, "hbm-wide", 665),
    (JpegEncode, Mom, "pim-vector", 1170),
    (JpegEncode, Mom3d, "ideal", 205),
    (JpegEncode, Mom3d, "vector-cache-3d", 389),
    (JpegDecode, Mmx, "ideal", 269),
    (JpegDecode, Mmx, "multi-banked", 269),
    (JpegDecode, Mmx, "vector-cache", 269),
    (JpegDecode, Mmx, "vector-cache-3d", 269),
    (JpegDecode, Mmx, "dram-burst", 269),
    (JpegDecode, Mmx, "hbm-wide", 269),
    (JpegDecode, Mmx, "pim-vector", 269),
    (JpegDecode, Mom, "ideal", 136),
    (JpegDecode, Mom, "multi-banked", 307),
    (JpegDecode, Mom, "vector-cache", 307),
    (JpegDecode, Mom, "vector-cache-3d", 307),
    (JpegDecode, Mom, "dram-burst", 335),
    (JpegDecode, Mom, "hbm-wide", 347),
    (JpegDecode, Mom, "pim-vector", 559),
    (JpegDecode, Mom3d, "ideal", 136),
    (JpegDecode, Mom3d, "vector-cache-3d", 307),
    (Mpeg2Decode, Mmx, "ideal", 252),
    (Mpeg2Decode, Mmx, "multi-banked", 358),
    (Mpeg2Decode, Mmx, "vector-cache", 358),
    (Mpeg2Decode, Mmx, "vector-cache-3d", 358),
    (Mpeg2Decode, Mmx, "dram-burst", 358),
    (Mpeg2Decode, Mmx, "hbm-wide", 358),
    (Mpeg2Decode, Mmx, "pim-vector", 358),
    (Mpeg2Decode, Mom, "ideal", 167),
    (Mpeg2Decode, Mom, "multi-banked", 619),
    (Mpeg2Decode, Mom, "vector-cache", 659),
    (Mpeg2Decode, Mom, "vector-cache-3d", 659),
    (Mpeg2Decode, Mom, "dram-burst", 701),
    (Mpeg2Decode, Mom, "hbm-wide", 493),
    (Mpeg2Decode, Mom, "pim-vector", 1011),
    (Mpeg2Decode, Mom3d, "ideal", 172),
    (Mpeg2Decode, Mom3d, "vector-cache-3d", 353),
    (Mpeg2Encode, Mmx, "ideal", 1741),
    (Mpeg2Encode, Mmx, "multi-banked", 1745),
    (Mpeg2Encode, Mmx, "vector-cache", 1745),
    (Mpeg2Encode, Mmx, "vector-cache-3d", 1745),
    (Mpeg2Encode, Mmx, "dram-burst", 1745),
    (Mpeg2Encode, Mmx, "hbm-wide", 1745),
    (Mpeg2Encode, Mmx, "pim-vector", 1745),
    (Mpeg2Encode, Mom, "ideal", 394),
    (Mpeg2Encode, Mom, "multi-banked", 3101),
    (Mpeg2Encode, Mom, "vector-cache", 3101),
    (Mpeg2Encode, Mom, "vector-cache-3d", 3101),
    (Mpeg2Encode, Mom, "dram-burst", 3113),
    (Mpeg2Encode, Mom, "hbm-wide", 2143),
    (Mpeg2Encode, Mom, "pim-vector", 4631),
    (Mpeg2Encode, Mom3d, "ideal", 781),
    (Mpeg2Encode, Mom3d, "vector-cache-3d", 807),
    (GsmEncode, Mmx, "ideal", 3581),
    (GsmEncode, Mmx, "multi-banked", 3581),
    (GsmEncode, Mmx, "vector-cache", 3581),
    (GsmEncode, Mmx, "vector-cache-3d", 3581),
    (GsmEncode, Mmx, "dram-burst", 3581),
    (GsmEncode, Mmx, "hbm-wide", 3581),
    (GsmEncode, Mmx, "pim-vector", 3581),
    (GsmEncode, Mom, "ideal", 982),
    (GsmEncode, Mom, "multi-banked", 3745),
    (GsmEncode, Mom, "vector-cache", 3745),
    (GsmEncode, Mom, "vector-cache-3d", 3745),
    (GsmEncode, Mom, "dram-burst", 3751),
    (GsmEncode, Mom, "hbm-wide", 3938),
    (GsmEncode, Mom, "pim-vector", 4102),
    (GsmEncode, Mom3d, "ideal", 987),
    (GsmEncode, Mom3d, "vector-cache-3d", 1017),
];

#[test]
fn paper_backends_match_pre_refactor_metrics_bit_for_bit() {
    let mut r = Runner::small(SEED);
    for (kind, variant, memory, l2, expected) in GOLDEN.into_iter().chain(GOLDEN_ZOO) {
        let id = BackendRegistry::parse(memory)
            .unwrap_or_else(|| panic!("golden backend {memory:?} not registered"));
        let got = r.metrics(kind, variant, id, l2);
        assert_eq!(
            got, expected,
            "{kind:?} {variant:?} on {memory} @ L2={l2} diverged from the pre-refactor enum path"
        );
    }
}

/// The event-driven scheduler reproduces the legacy cycle-stepped loop
/// on the whole experiment matrix. The matrix is also complete: every
/// registered backend appears for every kernel (all three variants when
/// the backend has the 3D register file, `Mmx`/`Mom` otherwise).
#[test]
fn full_matrix_cycles_match_cycle_stepped_loop_bit_for_bit() {
    let mut r = Runner::small(SEED);
    for (kind, variant, memory, cycles) in GOLDEN_CYCLES {
        let id = BackendRegistry::parse(memory)
            .unwrap_or_else(|| panic!("golden backend {memory:?} not registered"));
        let got = r.metrics(kind, variant, id, 20);
        assert_eq!(
            got.cycles, cycles,
            "{kind:?} {variant:?} on {memory}: event-driven cycles diverged from the \
             pre-rewrite cycle-stepped loop"
        );
    }
    // Completeness: no registered backend is missing from the pins.
    for entry in BackendRegistry::entries() {
        for kind in WorkloadKind::ALL {
            for variant in [Mmx, Mom, Mom3d] {
                let expected = variant != Mom3d || entry.has_3d;
                let present = GOLDEN_CYCLES
                    .iter()
                    .any(|&(k, v, m, _)| k == kind && v == variant && m == entry.id);
                assert_eq!(
                    present, expected,
                    "{kind:?} {variant:?} on {} pin coverage",
                    entry.id
                );
            }
        }
    }
}

#[test]
fn registry_ids_round_trip_and_order_is_deterministic() {
    let entries = BackendRegistry::entries();
    // Two snapshots enumerate identically.
    let ids: Vec<&str> = entries.iter().map(|e| e.id).collect();
    let again: Vec<&str> = BackendRegistry::entries().iter().map(|e| e.id).collect();
    assert_eq!(ids, again, "registry enumeration must be deterministic");
    // The built-ins lead, in canonical order.
    assert_eq!(
        &ids[..7],
        &[
            "ideal",
            "multi-banked",
            "vector-cache",
            "vector-cache-3d",
            "dram-burst",
            "hbm-wide",
            "pim-vector"
        ]
    );
    // parse(id).id() == id for every entry, and the paper shim agrees.
    for entry in &entries {
        let id = BackendRegistry::parse(entry.id).expect("registered id parses");
        assert_eq!(id.as_str(), entry.id);
        if let Some(kind) = MemorySystemKind::parse(entry.id) {
            assert_eq!(BackendId::from(kind), id);
            assert_eq!(kind.has_3d(), entry.has_3d);
        }
    }
    // The four paper kinds are all present.
    for kind in MemorySystemKind::ALL {
        assert!(ids.contains(&kind.id().as_str()), "{kind:?} missing from the registry");
    }
}

/// Every row-buffer-modelling backend passes the same emulator <->
/// timing smoke agreement as the paper backends: the timing simulator
/// must commit exactly the instruction stream the (backend-agnostic)
/// emulator executed, on every workload, and its row-buffer counters
/// must cover every access it charged to the memory side.
#[test]
fn row_buffer_backends_smoke_agreement() {
    for memory in ["dram-burst", "hbm-wide", "pim-vector"] {
        let id = BackendRegistry::parse(memory).expect("built-in backend registered");
        for kind in WorkloadKind::ALL {
            let wl = Workload::build_small(kind, IsaVariant::Mom, SEED)
                .unwrap_or_else(|e| panic!("{kind}: build failed: {e}"));
            wl.verify().unwrap_or_else(|e| panic!("{kind}: verification failed: {e}"));
            let trace = wl.trace();

            let mut emu = Emulator::with_machine(wl.machine());
            emu.run(trace).unwrap_or_else(|e| panic!("{kind}: emulation failed: {e}"));

            let metrics = Processor::new(
                ProcessorConfig::mom().with_memory(id).with_warm_caches(true),
            )
            .run(trace)
            .unwrap_or_else(|e| panic!("{kind}: {memory} simulation failed: {e}"));
            assert_eq!(
                metrics.instructions,
                emu.executed(),
                "{kind}: {memory} simulator and emulator disagree on committed instructions"
            );
            assert!(metrics.cycles > 0);
            // Every memory-side access either hit an open row or
            // activated one.
            assert_eq!(
                metrics.dram_row_hits + metrics.dram_row_misses,
                metrics.l2_activity,
                "{kind}: {memory} row-buffer accounting must cover every access"
            );
            assert!(metrics.dram_row_misses > 0, "{kind}: {memory} cold rows must activate");
        }
    }
}

/// The main-memory models are slower than the frictionless baseline:
/// activates and command issue cost cycles the ideal port never pays.
#[test]
fn main_memory_backends_never_beat_ideal() {
    let mut r = Runner::small(SEED);
    for memory in ["dram-burst", "hbm-wide", "pim-vector"] {
        for kind in [WorkloadKind::GsmEncode, WorkloadKind::Mpeg2Encode] {
            let ideal = r.mom_ideal_cycles(kind);
            let got = r.metrics(kind, Mom, BackendId::new(memory), 20).cycles;
            assert!(ideal < got, "{kind:?}: ideal {ideal} must beat {memory} {got}");
        }
    }
}

mod param_id_round_trip {
    use super::*;
    use proptest::prelude::*;

    /// One knob: its key and candidate values.
    type Knob = (&'static str, Vec<u64>);

    /// The parameterized families and their spec'd candidate values,
    /// read straight from the registry so the test tracks new knobs.
    fn families() -> Vec<(&'static str, Vec<Knob>)> {
        BackendRegistry::entries()
            .iter()
            .filter(|e| !e.params.is_empty())
            .map(|e| {
                let specs =
                    e.params.iter().map(|s| (s.key, s.candidates.to_vec())).collect::<Vec<_>>();
                (e.id, specs)
            })
            .collect()
    }

    proptest! {
        /// Any parameterized id built from registered specs round-trips
        /// parse -> display -> parse losslessly, no matter the key
        /// order or value choice, and canonicalizes to sorted keys.
        #[test]
        fn parameterized_ids_round_trip_losslessly(
            family in 0usize..5,
            mask in 1u8..16,
            picks in proptest::collection::vec(0usize..8, 4),
            shuffle in 0usize..4,
        ) {
            let fams = families();
            let (base, specs) = &fams[family % fams.len()];
            // Pick a non-empty subset of the family's keys and a
            // candidate value for each, then rotate the pair order so
            // canonicalization has something to do.
            let mut pairs: Vec<(&str, u64)> = specs
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << (i % 4)) != 0)
                .map(|(i, (key, cands))| (*key, cands[picks[i % 4] % cands.len()]))
                .collect();
            if pairs.is_empty() {
                pairs.push((specs[0].0, specs[0].1[0]));
            }
            let rot = shuffle % pairs.len();
            pairs.rotate_left(rot);

            let id = BackendRegistry::make_id(base, &pairs)
                .unwrap_or_else(|e| panic!("make_id({base}) rejected spec'd pairs: {e}"));
            // Display -> parse is the identity.
            prop_assert_eq!(BackendRegistry::parse(id.as_str()), Some(id));
            // Canonical form: base prefix, sorted keys, every pair kept.
            prop_assert_eq!(id.base(), *base);
            let keys: Vec<&str> = id.params().map(|(k, _)| k).collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&keys, &sorted, "params must canonicalize sorted");
            for (key, value) in &pairs {
                prop_assert!(
                    id.params().any(|(k, v)| k == *key && v == *value),
                    "pair {key}={value} lost in {id}"
                );
            }
            // The parameterized id resolves to the same entry and
            // capabilities as its base.
            let entry = BackendRegistry::get(id.as_str()).expect("parameterized id resolves");
            prop_assert_eq!(entry.id, *base);
            prop_assert_eq!(id.has_3d(), entry.has_3d);
        }
    }
}
