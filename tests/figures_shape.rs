//! Cross-crate integration tests asserting the qualitative shape of
//! every evaluation result, on reduced-geometry workloads (these run in
//! debug builds). Absolute magnitudes are checked loosely; orderings —
//! who wins, where 3D pays off, where it cannot — are checked strictly.

use mom3d::cpu::{MemorySystemKind, Metrics, Processor, ProcessorConfig};
use mom3d::kernels::{IsaVariant, Workload, WorkloadKind};

fn sim(wl: &Workload, mem: MemorySystemKind, l2: u32) -> Metrics {
    let base = match wl.variant() {
        IsaVariant::Mmx => ProcessorConfig::mmx(),
        _ => ProcessorConfig::mom(),
    };
    Processor::new(base.with_memory(mem).with_l2_latency(l2).with_warm_caches(true))
        .run(wl.trace())
        .expect("simulation succeeds")
}

fn wl(kind: WorkloadKind, variant: IsaVariant) -> Workload {
    let w = Workload::build_small(kind, variant, 5).expect("workload builds");
    w.verify().expect("workload verifies");
    w
}

/// Figure 3 shape: realistic memory systems slow MOM down on every
/// workload, and the cheap vector cache stays in the same league as the
/// multi-banked cache.
#[test]
fn fig3_realistic_memory_slows_mom_down() {
    for kind in WorkloadKind::ALL {
        let mom = wl(kind, IsaVariant::Mom);
        let ideal = sim(&mom, MemorySystemKind::Ideal, 20).cycles;
        let mb = sim(&mom, MemorySystemKind::MultiBanked, 20).cycles;
        let vc = sim(&mom, MemorySystemKind::VectorCache, 20).cycles;
        assert!(mb > ideal, "{kind}: multi-banked must cost cycles");
        assert!(vc > ideal, "{kind}: vector cache must cost cycles");
        // "reasonably similar": within 2x of each other on every workload.
        let ratio = vc as f64 / mb as f64;
        assert!((0.5..=2.0).contains(&ratio), "{kind}: vc/mb ratio {ratio:.2}");
    }
}

/// Figure 6 shape: 3D vectorization lifts the vector cache's effective
/// bandwidth on the bandwidth-starved workloads, to or above the
/// multi-banked cache.
#[test]
fn fig6_3d_lifts_effective_bandwidth() {
    for kind in [WorkloadKind::Mpeg2Encode, WorkloadKind::GsmEncode] {
        let vc = sim(&wl(kind, IsaVariant::Mom), MemorySystemKind::VectorCache, 20);
        let mb = sim(&wl(kind, IsaVariant::Mom), MemorySystemKind::MultiBanked, 20);
        let d3 = sim(&wl(kind, IsaVariant::Mom3d), MemorySystemKind::VectorCache3d, 20);
        assert!(
            d3.effective_bandwidth() > vc.effective_bandwidth(),
            "{kind}: 3D must beat the plain vector cache"
        );
        assert!(
            d3.effective_bandwidth() >= mb.effective_bandwidth(),
            "{kind}: 3D must match or beat the multi-banked cache ({:.2} vs {:.2})",
            d3.effective_bandwidth(),
            mb.effective_bandwidth()
        );
    }
}

/// Figure 7 shape: traffic reduction is large for the overlap-heavy
/// workloads, moderate for mpeg2 decode, zero for jpeg decode.
#[test]
fn fig7_traffic_reduction_ordering() {
    let words = |kind, variant, mem| sim(&wl(kind, variant), mem, 20).vec_words;
    let reduction = |kind| {
        let w2 = words(kind, IsaVariant::Mom, MemorySystemKind::VectorCache) as f64;
        let w3 = words(kind, IsaVariant::Mom3d, MemorySystemKind::VectorCache3d) as f64;
        1.0 - w3 / w2
    };
    assert!(reduction(WorkloadKind::Mpeg2Encode) > 0.5);
    assert!(reduction(WorkloadKind::GsmEncode) > 0.5);
    let dec = reduction(WorkloadKind::Mpeg2Decode);
    assert!(dec > 0.05 && dec < 0.5, "mpeg2 decode moderate, got {dec:.2}");
    assert_eq!(reduction(WorkloadKind::JpegDecode), 0.0);
}

/// Figure 9 shape: with realistic memory, MOM+3D is the fastest
/// configuration on every workload with 3D patterns, and leaves
/// jpeg decode untouched.
#[test]
fn fig9_mom3d_wins_where_patterns_exist() {
    for kind in WorkloadKind::ALL {
        let vc = sim(&wl(kind, IsaVariant::Mom), MemorySystemKind::VectorCache, 20).cycles;
        let d3 = sim(&wl(kind, IsaVariant::Mom3d), MemorySystemKind::VectorCache3d, 20).cycles;
        if kind.has_3d_patterns() {
            assert!(d3 < vc, "{kind}: 3D must win ({d3} vs {vc})");
        } else {
            assert_eq!(d3, vc, "{kind}: no patterns, no change");
        }
    }
}

/// Figure 9 shape: the MMX-style processor is limited by fetch/issue,
/// not memory — its ideal-memory configuration is still slower than
/// MOM's ideal configuration.
#[test]
fn fig9_mmx_is_issue_bound() {
    for kind in [WorkloadKind::Mpeg2Encode, WorkloadKind::GsmEncode] {
        let mmx_ideal = sim(&wl(kind, IsaVariant::Mmx), MemorySystemKind::Ideal, 20).cycles;
        let mom_ideal = sim(&wl(kind, IsaVariant::Mom), MemorySystemKind::Ideal, 20).cycles;
        assert!(
            mmx_ideal > mom_ideal,
            "{kind}: MMX ideal ({mmx_ideal}) must trail MOM ideal ({mom_ideal})"
        );
        // And giving MMX a realistic memory barely moves it (compute
        // bound): within 30%.
        let mmx_mb = sim(&wl(kind, IsaVariant::Mmx), MemorySystemKind::MultiBanked, 20).cycles;
        assert!((mmx_mb as f64) < 1.3 * mmx_ideal as f64, "{kind}: MMX should be compute-bound");
    }
}

/// Figure 10 shape: raising L2 latency from 20 to 60 cycles hurts MOM
/// substantially more than MOM+3D on the memory-bound workloads.
#[test]
fn fig10_3d_is_latency_robust() {
    for kind in [WorkloadKind::Mpeg2Encode, WorkloadKind::GsmEncode] {
        let mom = wl(kind, IsaVariant::Mom);
        let m3d = wl(kind, IsaVariant::Mom3d);
        let slow2 = sim(&mom, MemorySystemKind::VectorCache, 60).cycles as f64
            / sim(&mom, MemorySystemKind::VectorCache, 20).cycles as f64;
        let slow3 = sim(&m3d, MemorySystemKind::VectorCache3d, 60).cycles as f64
            / sim(&m3d, MemorySystemKind::VectorCache3d, 20).cycles as f64;
        assert!(
            slow3 < slow2,
            "{kind}: 3D slowdown {slow3:.2} must be below MOM slowdown {slow2:.2}"
        );
        assert!(slow2 > 1.1, "{kind}: MOM must actually feel the latency");
    }
}

/// Table 4 shape: L2 activity drops from multi-banked to vector cache,
/// and again with the 3D register file.
#[test]
fn table4_activity_ordering() {
    let mut vc_saves = 0;
    for kind in WorkloadKind::ALL {
        let mb = sim(&wl(kind, IsaVariant::Mom), MemorySystemKind::MultiBanked, 20)
            .total_l2_activity();
        let vc = sim(&wl(kind, IsaVariant::Mom), MemorySystemKind::VectorCache, 20)
            .total_l2_activity();
        let d3 = sim(&wl(kind, IsaVariant::Mom3d), MemorySystemKind::VectorCache3d, 20)
            .total_l2_activity();
        assert!(vc <= mb, "{kind}: wide accesses cannot exceed bank accesses");
        if vc < mb {
            vc_saves += 1;
        }
        if kind.has_3d_patterns() {
            assert!(d3 < vc, "{kind}: 3D must reduce activity");
        } else {
            assert_eq!(d3, vc);
        }
    }
    assert!(vc_saves >= 3, "vector cache must save activity on most workloads");
}

/// Figure 11 shape: 3D register file accesses are far cheaper than the
/// L2 accesses they displace, so the 3D configuration's memory
/// sub-system energy per workload drops where patterns exist.
#[test]
fn fig11_energy_drops_with_3d() {
    use mom3d::power::{L2Params, ProcessParams, RegFileSpec};
    let process = ProcessParams::default();
    let e_l2 = L2Params::default().access_energy(&process);
    let e_rf = process.regfile_access_energy(&RegFileSpec::dreg_3d());
    assert!(e_rf * 10.0 < e_l2);
    for kind in [WorkloadKind::Mpeg2Encode, WorkloadKind::GsmEncode] {
        let vc = sim(&wl(kind, IsaVariant::Mom), MemorySystemKind::VectorCache, 20);
        let d3 = sim(&wl(kind, IsaVariant::Mom3d), MemorySystemKind::VectorCache3d, 20);
        let energy_vc = vc.total_l2_activity() as f64 * e_l2;
        let energy_d3 = d3.total_l2_activity() as f64 * e_l2
            + (d3.d3_writes + d3.mov3d_words) as f64 * e_rf;
        assert!(
            energy_d3 < energy_vc,
            "{kind}: memory energy must drop ({energy_d3:.3e} vs {energy_vc:.3e})"
        );
    }
}

/// Table 1 shape: jpeg decode has the longest 2D vectors and no third
/// dimension; the 3D variants report their per-dimension lengths.
#[test]
fn table1_dimensions() {
    let s_dec = wl(WorkloadKind::JpegDecode, IsaVariant::Mom).trace().stats();
    assert!(s_dec.avg_dim2() > 12.0, "jpeg decode uses long dense vectors");
    for kind in WorkloadKind::ALL {
        let s = wl(kind, IsaVariant::Mom3d).trace().stats();
        if kind.has_3d_patterns() {
            let d3 = s.avg_dim3().expect("has 3D loads");
            assert!((1.0..=32.0).contains(&d3), "{kind}: dim3 {d3}");
        } else {
            assert_eq!(s.avg_dim3(), None);
        }
        assert!(s.avg_dim1() >= 3.0, "{kind}: subword parallelism present");
    }
}
