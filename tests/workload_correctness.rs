//! Cross-crate functional checks: every workload × ISA variant must
//! reproduce its scalar reference bit-for-bit through the emulator, with
//! deterministic builds and seed sensitivity.

use mom3d::kernels::{IsaVariant, Workload, WorkloadKind};

#[test]
fn every_workload_and_variant_verifies() {
    for kind in WorkloadKind::ALL {
        for variant in IsaVariant::ALL {
            let wl = Workload::build_small(kind, variant, 13)
                .unwrap_or_else(|e| panic!("{kind} {variant}: build failed: {e}"));
            wl.verify().unwrap_or_else(|e| panic!("{kind} {variant}: {e}"));
        }
    }
}

#[test]
fn builds_are_deterministic() {
    for kind in WorkloadKind::ALL {
        let a = Workload::build_small(kind, IsaVariant::Mom, 5).unwrap();
        let b = Workload::build_small(kind, IsaVariant::Mom, 5).unwrap();
        assert_eq!(a.trace(), b.trace(), "{kind}: same seed, same trace");
        assert_eq!(a.checks(), b.checks(), "{kind}: same seed, same outputs");
    }
}

#[test]
fn seeds_change_data_not_structure() {
    for kind in WorkloadKind::ALL {
        let a = Workload::build_small(kind, IsaVariant::Mom, 1).unwrap();
        let b = Workload::build_small(kind, IsaVariant::Mom, 2).unwrap();
        // Structure (instruction mix) is seed-independent...
        let (sa, sb) = (a.trace().stats(), b.trace().stats());
        assert_eq!(sa.mem_2d, sb.mem_2d, "{kind}");
        assert_eq!(sa.vcompute, sb.vcompute, "{kind}");
        // ...but the data (and therefore expected outputs) differ.
        assert_ne!(a.checks(), b.checks(), "{kind}: different seeds, different data");
    }
}

#[test]
fn variants_agree_on_outputs() {
    // All three ISA variants compute the same function: their reference
    // checks must be identical for the same seed.
    for kind in WorkloadKind::ALL {
        let mmx = Workload::build_small(kind, IsaVariant::Mmx, 9).unwrap();
        let mom = Workload::build_small(kind, IsaVariant::Mom, 9).unwrap();
        let m3d = Workload::build_small(kind, IsaVariant::Mom3d, 9).unwrap();
        assert_eq!(mmx.checks(), mom.checks(), "{kind}");
        assert_eq!(mom.checks(), m3d.checks(), "{kind}");
    }
}

#[test]
fn instruction_count_ordering() {
    // MMX code needs several times the instructions of MOM code (the 2D
    // ISA's raison d'etre), and 3D never increases the count.
    for kind in WorkloadKind::ALL {
        let mmx = Workload::build_small(kind, IsaVariant::Mmx, 3).unwrap().trace().len();
        let mom = Workload::build_small(kind, IsaVariant::Mom, 3).unwrap().trace().len();
        let m3d = Workload::build_small(kind, IsaVariant::Mom3d, 3).unwrap().trace().len();
        assert!(mmx as f64 >= 1.8 * mom as f64, "{kind}: mmx {mmx} vs mom {mom}");
        assert!(m3d <= mom, "{kind}: 3D packs more work per instruction");
    }
}

#[test]
fn full_size_workloads_are_larger() {
    let small = Workload::build_small(WorkloadKind::Mpeg2Encode, IsaVariant::Mom, 3)
        .unwrap()
        .trace()
        .len();
    let full =
        Workload::build(WorkloadKind::Mpeg2Encode, IsaVariant::Mom, 3).unwrap().trace().len();
    assert!(full > 4 * small);
}
