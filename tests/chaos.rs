//! End-to-end chaos runs: whole deployments driven through the
//! in-process fault-injecting proxy ([`mom3d_bench::faults::ChaosProxy`])
//! must still produce results **bit-identical** to the in-process
//! serial path. Frames are delayed, dropped, truncated, bit-flipped and
//! stalled between unmodified peers; the retry/lease/backpressure
//! machinery has to absorb every one of them — chaos may cost latency,
//! never correctness.
//!
//! Every run is wrapped in an explicit wall-clock deadline so a
//! resilience regression fails the test instead of wedging the suite.
//! The fault *schedules* themselves are pinned deterministic by unit
//! tests in `mom3d_bench::faults`; here the seeds pick genuinely
//! different damage patterns.

use mom3d::cpu::{BackendId, MemorySystemKind, Metrics};
use mom3d::kernels::{IsaVariant, WorkloadKind};
use mom3d_bench::faults::{ChaosConfig, ChaosProxy};
use mom3d_bench::protocol::{Endpoint, RetryClient, RetryPolicy};
use mom3d_bench::serve::{serve, ServeConfig};
use mom3d_bench::shard::{coordinate, run_worker, ShardConfig, WorkerConfig};
use mom3d_bench::sweep::SweepReport;
use mom3d_bench::{Runner, SimKey};
use std::path::PathBuf;
use std::time::Duration;

const SEED: u64 = 11;

/// Generous per-run ceiling: a healthy chaos run finishes in a few
/// seconds; only a wedged one gets anywhere near this.
const RUN_DEADLINE: Duration = Duration::from_secs(120);

/// The same small-but-representative grid as `shard_determinism.rs`:
/// two workloads, every paper memory system plus the registry-only
/// DRAM-burst backend, and a non-default L2 latency. 12 cells.
fn grid() -> Vec<SimKey> {
    let mut cells = Vec::new();
    for kind in [WorkloadKind::GsmEncode, WorkloadKind::JpegDecode] {
        for (variant, memory) in [
            (IsaVariant::Mom, MemorySystemKind::Ideal.id()),
            (IsaVariant::Mom, MemorySystemKind::MultiBanked.id()),
            (IsaVariant::Mom, MemorySystemKind::VectorCache.id()),
            (IsaVariant::Mom3d, MemorySystemKind::VectorCache3d.id()),
            (IsaVariant::Mom, BackendId::new("dram-burst")),
        ] {
            cells.push(SimKey { kind, variant, memory, l2_latency: 20 });
        }
        cells.push(SimKey {
            kind,
            variant: IsaVariant::Mom,
            memory: MemorySystemKind::VectorCache.into(),
            l2_latency: 60,
        });
    }
    cells
}

fn serial_metrics(cells: &[SimKey]) -> Vec<Metrics> {
    let mut r = Runner::small(SEED);
    cells.iter().map(|c| r.metrics(c.kind, c.variant, c.memory, c.l2_latency)).collect()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mom3d-chaos-{}-{name}.sock", std::process::id()))
}

/// Runs `f` on a fresh thread and panics (failing the test) if it does
/// not finish within `limit` — the "zero hangs" guarantee, enforced.
fn with_deadline<T: Send + 'static>(
    what: &str,
    limit: Duration,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let thread = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(value) => {
            let _ = thread.join();
            value
        }
        Err(_) => panic!("{what} exceeded its {limit:?} deadline — a chaos fault wedged the run"),
    }
}

fn assert_bit_identical(report: &SweepReport, cells: &[SimKey], serial: &[Metrics], what: &str) {
    assert_eq!(report.cells.len(), cells.len(), "{what}: cell count");
    for ((cell, &key), expected) in report.cells.iter().zip(cells).zip(serial) {
        assert_eq!(cell.key, key, "{what}: grid enumeration order");
        assert_eq!(cell.metrics, *expected, "{what}: diverged from the serial path on {key:?}");
    }
}

/// One sharded sweep where **all** coordinator↔worker traffic crosses
/// the chaos proxy. Workers survive via their reconnect/backoff layer;
/// grants orphaned by a proxy-torn connection come back via the grant
/// lease. Returns the merged report.
fn sharded_through_proxy(name: &str, chaos: ChaosConfig) -> SweepReport {
    let upstream = Endpoint::Unix(tmp(&format!("{name}-up")));
    let proxied = Endpoint::Unix(tmp(&format!("{name}-proxy")));
    let cells = grid();

    let config = ShardConfig {
        seed: SEED,
        small: true,
        workers: 0, // worker *threads* below, no spawned processes
        batch: 2,
        // Short lease so a grant stranded by a torn connection requeues
        // well inside the test deadline.
        lease: Duration::from_secs(1),
        ..ShardConfig::default()
    };
    let coordinator = {
        let endpoint = upstream.clone();
        std::thread::spawn(move || coordinate(endpoint, &cells, &config))
    };
    let mut proxy =
        ChaosProxy::spawn(proxied, upstream, chaos).expect("chaos proxy must bind");

    let workers: Vec<_> = (0..2u32)
        .map(|id| {
            let endpoint = proxy.endpoint().clone();
            std::thread::spawn(move || {
                let config = WorkerConfig { id, threads: 1, ..WorkerConfig::default() };
                run_worker(&endpoint, &config)
            })
        })
        .collect();

    for worker in workers {
        // A worker that happens to be mid-reconnect when the sweep
        // completes dials the still-alive proxy, finds the coordinator
        // gone and eventually gives up — that is a clean chaos outcome,
        // not a failure, so only the *thread* must finish.
        let _ = worker.join().expect("worker thread panicked");
    }
    let report =
        coordinator.join().expect("coordinator thread panicked").expect("coordinator failed");
    proxy.shutdown();
    report
}

#[test]
fn a_sharded_sweep_through_the_chaos_proxy_is_bit_identical() {
    let cells = grid();
    let serial = serial_metrics(&cells);
    // Three seeds over three damage mixes (delay/drop/stall/truncate/
    // bit-flip; black-hole is exercised at the client layer below and
    // by the stalled-worker lease test in shard_determinism.rs).
    for (seed, profile) in
        [(1, "mixed"), (2, "delay,drop,stall,rate=10"), (3, "delay,truncate,rate=8")]
    {
        let chaos = ChaosConfig::from_cli(Some(seed), Some(profile))
            .expect("profile parses")
            .expect("both flags given");
        let what = format!("sharded chaos run (seed {seed}, profile {profile})");
        let report = {
            let what = what.clone();
            with_deadline(&what.clone(), RUN_DEADLINE, move || {
                sharded_through_proxy(&format!("shard-{seed}"), chaos)
            })
        };
        assert_bit_identical(&report, &cells, &serial, &what);
        // Attribution still partitions the grid: chaos may move cells
        // between workers but never completes one twice.
        let sharding = report.sharding.as_ref().expect("sharded runs fill the block");
        let attributed: u64 = sharding.workers.iter().map(|w| w.cells).sum();
        assert_eq!(attributed, cells.len() as u64, "{what}: attribution");
    }
}

#[test]
fn a_sweep_over_serve_through_the_chaos_proxy_is_bit_identical() {
    let cells = grid();
    let serial = serial_metrics(&cells);
    // Three seeds over three mixes, including `heavy` (every class,
    // black-hole included — the client's per-frame deadline has to cut
    // through an absorbed connection).
    for (seed, profile) in [(7, "mixed"), (8, "delay,drop,truncate,rate=8"), (9, "heavy")] {
        let chaos = ChaosConfig::from_cli(Some(seed), Some(profile))
            .expect("profile parses")
            .expect("both flags given");
        let what = format!("serve chaos run (seed {seed}, profile {profile})");
        let (replies, counters) = {
            let cells = cells.clone();
            let what = what.clone();
            with_deadline(&what, RUN_DEADLINE, move || {
                let handle = serve(
                    Endpoint::Unix(tmp(&format!("serve-{seed}-up"))),
                    ServeConfig { seed: SEED, small: true, threads: 2, ..ServeConfig::default() },
                )
                .expect("server must bind");
                let mut proxy = ChaosProxy::spawn(
                    Endpoint::Unix(tmp(&format!("serve-{seed}-proxy"))),
                    handle.endpoint().clone(),
                    chaos,
                )
                .expect("chaos proxy must bind");
                // A tight per-frame deadline so a black-holed connection
                // costs seconds, not the default 120 s.
                let policy = RetryPolicy {
                    attempts: 16,
                    io_timeout: Some(Duration::from_secs(2)),
                    ..RetryPolicy::default()
                };
                let mut client = RetryClient::new(proxy.endpoint().clone(), policy);
                let replies = client.sweep(&cells).expect("retrying sweep must converge");
                let counters = client.counters();
                proxy.shutdown();
                handle.shutdown();
                (replies, counters)
            })
        };
        assert_eq!(replies.len(), cells.len(), "{what}: reply count");
        for ((reply, &key), expected) in replies.iter().zip(&cells).zip(&serial) {
            assert_eq!(reply.key, key, "{what}: replies keep request order");
            assert_eq!(
                reply.metrics, *expected,
                "{what}: diverged from the serial path on {key:?}"
            );
        }
        // The counters are the client's own story of the run — sheds
        // can only come from a loaded server, not from wire damage.
        assert_eq!(counters.sheds, 0, "{what}: an idle server never sheds");
    }
}

#[test]
fn client_side_chaos_against_a_quiet_server_still_converges() {
    // The other deployment shape: a pristine server, damage injected by
    // the *client's* own connection wrapper (`mom3d-load --chaos-seed`).
    let cells = grid();
    let serial = serial_metrics(&cells);
    let what = "client-side chaos run";
    let (replies, counters) = {
        let cells = cells.clone();
        with_deadline(what, RUN_DEADLINE, move || {
            let handle = serve(
                Endpoint::Unix(tmp("client-chaos-up")),
                ServeConfig { seed: SEED, small: true, threads: 2, ..ServeConfig::default() },
            )
            .expect("server must bind");
            let chaos = ChaosConfig::from_cli(Some(5), Some("mixed"))
                .expect("profile parses")
                .expect("both flags given");
            let policy = RetryPolicy {
                attempts: 16,
                io_timeout: Some(Duration::from_secs(2)),
                ..RetryPolicy::default()
            };
            let mut client =
                RetryClient::with_chaos(handle.endpoint().clone(), policy, Some(chaos));
            let replies = client.sweep(&cells).expect("retrying sweep must converge");
            let counters = client.counters();
            handle.shutdown();
            (replies, counters)
        })
    };
    for ((reply, &key), expected) in replies.iter().zip(&cells).zip(&serial) {
        assert_eq!(reply.key, key, "{what}: replies keep request order");
        assert_eq!(reply.metrics, *expected, "{what}: diverged on {key:?}");
    }
    assert_eq!(counters.sheds, 0, "{what}: an idle server never sheds");
}
