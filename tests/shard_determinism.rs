//! Distributed sharding must be a pure deployment choice: the merged
//! [`SweepReport`] is bit-identical to the serial `Runner::metrics`
//! path for every cell, at any worker count, across crashes and
//! manifest resumes — and a resumed run never re-simulates a completed
//! cell.
//!
//! These tests drive the real coordinator ([`shard::coordinate`]) and
//! real workers ([`shard::run_worker`]) over real unix sockets, but as
//! threads of this process so the worker count, crash points and
//! manifest contents are exactly controlled. The process-level layer
//! (SIGKILL, `--resume`, manifest corruption on the shipped binaries)
//! lives in `crates/bench/tests/shard.rs`.

use mom3d::cpu::{BackendId, MemorySystemKind, Metrics};
use mom3d::kernels::{IsaVariant, WorkloadKind};
use mom3d_bench::manifest::Manifest;
use mom3d_bench::protocol::Endpoint;
use mom3d_bench::shard::{coordinate, run_worker, ShardConfig, WorkerConfig, WorkerSummary};
use mom3d_bench::sweep::SweepReport;
use mom3d_bench::{Runner, SimKey};
use std::path::PathBuf;
use std::time::Duration;

const SEED: u64 = 11;

/// The same small-but-representative grid as `sweep_determinism.rs`:
/// two workloads, every paper memory system plus the registry-only
/// DRAM-burst backend, and a non-default L2 latency. 12 cells.
fn grid() -> Vec<SimKey> {
    let mut cells = Vec::new();
    for kind in [WorkloadKind::GsmEncode, WorkloadKind::JpegDecode] {
        for (variant, memory) in [
            (IsaVariant::Mom, MemorySystemKind::Ideal.id()),
            (IsaVariant::Mom, MemorySystemKind::MultiBanked.id()),
            (IsaVariant::Mom, MemorySystemKind::VectorCache.id()),
            (IsaVariant::Mom3d, MemorySystemKind::VectorCache3d.id()),
            (IsaVariant::Mom, BackendId::new("dram-burst")),
        ] {
            cells.push(SimKey { kind, variant, memory, l2_latency: 20 });
        }
        cells.push(SimKey {
            kind,
            variant: IsaVariant::Mom,
            memory: MemorySystemKind::VectorCache.into(),
            l2_latency: 60,
        });
    }
    cells
}

fn serial_metrics(cells: &[SimKey]) -> Vec<Metrics> {
    let mut r = Runner::small(SEED);
    cells.iter().map(|c| r.metrics(c.kind, c.variant, c.memory, c.l2_latency)).collect()
}

fn tmp(name: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mom3d-shard-determinism-{}-{name}.{ext}",
        std::process::id()
    ))
}

/// Runs one sharded sweep: the coordinator in one thread (spawning no
/// worker processes), one [`run_worker`] thread per entry of
/// `worker_aborts` (`Some(n)` = crash after `n` cells in total).
/// Returns the merged report and each surviving worker's summary.
fn run_sharded(
    name: &str,
    worker_aborts: &[Option<usize>],
    config: ShardConfig,
) -> (SweepReport, Vec<WorkerSummary>) {
    let sock = tmp(name, "sock");
    let endpoint = Endpoint::Unix(sock);
    let cells = grid();

    let coordinator = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || coordinate(endpoint, &cells, &config))
    };
    let workers: Vec<_> = worker_aborts
        .iter()
        .enumerate()
        .map(|(id, &abort_after)| {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || {
                let config = WorkerConfig {
                    id: id as u32,
                    threads: 1,
                    abort_after,
                    ..WorkerConfig::default()
                };
                run_worker(&endpoint, &config)
            })
        })
        .collect();

    let summaries = workers
        .into_iter()
        .map(|w| w.join().expect("worker thread panicked").expect("worker failed"))
        .collect();
    let report = coordinator
        .join()
        .expect("coordinator thread panicked")
        .expect("coordinator failed");
    (report, summaries)
}

fn assert_bit_identical(report: &SweepReport, cells: &[SimKey], serial: &[Metrics]) {
    assert_eq!(report.cells.len(), cells.len());
    for ((cell, &key), expected) in report.cells.iter().zip(cells).zip(serial) {
        assert_eq!(cell.key, key, "merged report must keep grid enumeration order");
        assert_eq!(
            cell.metrics, *expected,
            "sharded sweep diverged from the serial path on {key:?}"
        );
    }
}

#[test]
fn sharded_sweep_is_bit_identical_to_serial_at_any_worker_count() {
    let cells = grid();
    let serial = serial_metrics(&cells);
    for workers in [1usize, 2, 4] {
        let aborts = vec![None; workers];
        let config = ShardConfig {
            seed: SEED,
            small: true,
            workers: 0, // worker *threads* below, no spawned processes
            batch: 2,   // several grants per worker, so scheduling actually varies
            ..ShardConfig::default()
        };
        let (report, summaries) =
            run_sharded(&format!("identity-{workers}w"), &aborts, config);

        assert_bit_identical(&report, &cells, &serial);
        assert!(report.cells.iter().all(|c| !c.reused), "nothing was resumed");
        let sharding = report.sharding.as_ref().expect("sharded runs fill the block");
        assert_eq!(sharding.resumed_cells, 0);
        // Every completed cell is attributed to exactly one worker:
        // the per-worker counts partition the grid.
        let attributed: u64 = sharding.workers.iter().map(|w| w.cells).sum();
        assert_eq!(attributed, cells.len() as u64, "{workers} workers");
        // Each worker simulated at least what it was credited with
        // (steals can make a worker simulate more than it wins).
        let simulated: u64 = summaries.iter().map(|s| s.cells).sum();
        assert!(simulated >= attributed);
    }
}

#[test]
fn a_crashed_worker_costs_no_completed_cell() {
    let cells = grid();
    let serial = serial_metrics(&cells);
    // Worker 0 vanishes mid-shard after 3 cells — no FIN, dropped
    // connection, exactly like a SIGKILLed process. Worker 1 survives.
    let config = ShardConfig {
        seed: SEED,
        small: true,
        workers: 0,
        batch: 2,
        ..ShardConfig::default()
    };
    let (report, summaries) = run_sharded("crash", &[Some(3), None], config);

    assert_bit_identical(&report, &cells, &serial);
    assert_eq!(summaries[0].cells, 3, "the crash point is exact");
    let sharding = report.sharding.as_ref().expect("sharded runs fill the block");
    // The crash loses no completed cell and completes no cell twice:
    // attribution still partitions the whole grid.
    let attributed: u64 = sharding.workers.iter().map(|w| w.cells).sum();
    assert_eq!(attributed, cells.len() as u64);
    assert_eq!(sharding.resumed_cells, 0);
}

#[test]
fn a_stalled_worker_cannot_wedge_the_sweep() {
    // Worker 0 completes ONE cell of its two-cell grant and then goes
    // silent with the connection OPEN — the stalled-not-dead failure
    // mode a dropped-connection detector cannot see. Its residual
    // one-cell grant is also unstealable (stealing needs >= 2 cells),
    // so only the grant lease can unblock the sweep.
    let cells = grid();
    let serial = serial_metrics(&cells);
    let sock = tmp("stall", "sock");
    let endpoint = Endpoint::Unix(sock);
    let config = ShardConfig {
        seed: SEED,
        small: true,
        workers: 0,
        batch: 2,
        lease: Duration::from_millis(300),
        ..ShardConfig::default()
    };

    let coordinator = {
        let endpoint = endpoint.clone();
        let cells = cells.clone();
        std::thread::spawn(move || coordinate(endpoint, &cells, &config))
    };
    let staller = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            let config = WorkerConfig {
                id: 0,
                threads: 1,
                stall_after: Some(1),
                stall_for: Duration::from_secs(2),
                ..WorkerConfig::default()
            };
            run_worker(&endpoint, &config)
        })
    };
    let survivor = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            let config = WorkerConfig { id: 1, threads: 1, ..WorkerConfig::default() };
            run_worker(&endpoint, &config)
        })
    };

    let stalled = staller.join().expect("staller thread panicked").expect("staller failed");
    let _ = survivor.join().expect("survivor thread panicked").expect("survivor failed");
    let report =
        coordinator.join().expect("coordinator thread panicked").expect("coordinator failed");

    // The merged report is exact despite the stall — the lease requeued
    // the abandoned cell and the survivor finished it.
    assert_bit_identical(&report, &cells, &serial);
    assert_eq!(stalled.cells, 1, "the stall point is exact");
    let sharding = report.sharding.as_ref().expect("sharded runs fill the block");
    let attributed: u64 = sharding.workers.iter().map(|w| w.cells).sum();
    assert_eq!(attributed, cells.len() as u64, "attribution still partitions the grid");
}

#[test]
fn an_injected_crash_mid_append_resumes_exactly_the_complement() {
    // Satellite of the fault-injection layer: instead of chopping bytes
    // off a finished file, stage the crash itself — a manifest whose
    // file rejects writes mid-way through the fifth record, exactly
    // what a process death mid-`append` leaves on disk.
    use mom3d_bench::faults::WriteFault;
    let cells = grid();
    let serial = serial_metrics(&cells);
    let path = tmp("resume-shortwrite", "mwm");
    let _ = std::fs::remove_file(&path);

    // Measure the clean sizes of 4 and 5 records so the fault budget
    // lands inside record five.
    let (four, five) = {
        let mut m = Manifest::create(&path, SEED, true, &cells).unwrap();
        for (key, metrics) in cells.iter().zip(&serial).take(4) {
            m.append(key, metrics).unwrap();
        }
        drop(m);
        let four = std::fs::read(&path).unwrap().len() as u64;
        let mut m = Manifest::create(&path, SEED, true, &cells).unwrap();
        for (key, metrics) in cells.iter().zip(&serial).take(5) {
            m.append(key, metrics).unwrap();
        }
        drop(m);
        (four, std::fs::read(&path).unwrap().len() as u64)
    };
    assert!(five > four + 2, "record five must span multiple bytes");

    // The "crashing" writer: dies (four + five) / 2 bytes in.
    let fault = WriteFault { fail_after: (four + five) / 2 };
    let mut m = Manifest::create_with_fault(&path, SEED, true, &cells, Some(fault)).unwrap();
    for (key, metrics) in cells.iter().zip(&serial).take(4) {
        m.append(key, metrics).unwrap();
    }
    m.append(&cells[4], &serial[4]).expect_err("the fifth append dies mid-record");
    drop(m);

    // Resume trusts the four whole records and re-grants exactly the
    // complement — the torn fifth record re-simulates with the rest.
    let config = ShardConfig {
        seed: SEED,
        small: true,
        workers: 0,
        batch: 2,
        manifest: Some(path.clone()),
        resume: true,
        ..ShardConfig::default()
    };
    let (report, summaries) = run_sharded("resume-shortwrite", &[None], config);

    assert_bit_identical(&report, &cells, &serial);
    let sharding = report.sharding.as_ref().expect("sharded runs fill the block");
    assert_eq!(sharding.resumed_cells, 4);
    assert_eq!(summaries[0].cells, (cells.len() - 4) as u64, "exactly the complement re-ran");
    for (i, cell) in report.cells.iter().enumerate() {
        assert_eq!(cell.reused, i < 4, "cell {i}");
    }

    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_manifest_resume_never_resimulates_completed_cells() {
    let cells = grid();
    let serial = serial_metrics(&cells);
    let path = tmp("resume-partial", "mwm");
    let _ = std::fs::remove_file(&path);

    // A previous run completed the first 5 cells before dying: journal
    // exactly those, the way the coordinator would have.
    const DONE: usize = 5;
    {
        let mut m = Manifest::create(&path, SEED, true, &cells).unwrap();
        for (key, metrics) in cells.iter().zip(&serial).take(DONE) {
            m.append(key, metrics).unwrap();
        }
    }

    let config = ShardConfig {
        seed: SEED,
        small: true,
        workers: 0,
        batch: 2,
        manifest: Some(path.clone()),
        resume: true,
        ..ShardConfig::default()
    };
    let (report, summaries) = run_sharded("resume-partial", &[None], config);

    assert_bit_identical(&report, &cells, &serial);
    let sharding = report.sharding.as_ref().expect("sharded runs fill the block");
    assert_eq!(sharding.resumed_cells, DONE as u64);
    for (i, cell) in report.cells.iter().enumerate() {
        assert_eq!(cell.reused, i < DONE, "cell {i}");
        if cell.reused {
            assert_eq!(cell.wall, Duration::ZERO, "replayed cells cost nothing");
        }
    }
    // Zero re-simulation of completed cells: the one worker simulated
    // exactly the remainder.
    assert_eq!(summaries[0].cells, (cells.len() - DONE) as u64);
    let attributed: u64 = sharding.workers.iter().map(|w| w.cells).sum();
    assert_eq!(attributed, (cells.len() - DONE) as u64);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_complete_manifest_resumes_with_no_worker_at_all() {
    let cells = grid();
    let serial = serial_metrics(&cells);
    let path = tmp("resume-full", "mwm");
    let _ = std::fs::remove_file(&path);
    {
        let mut m = Manifest::create(&path, SEED, true, &cells).unwrap();
        for (key, metrics) in cells.iter().zip(&serial) {
            m.append(key, metrics).unwrap();
        }
    }

    // Nothing to simulate, so no worker is launched: the coordinator
    // replays the journal and returns.
    let config = ShardConfig {
        seed: SEED,
        small: true,
        workers: 0,
        manifest: Some(path.clone()),
        resume: true,
        ..ShardConfig::default()
    };
    let (report, _) = run_sharded("resume-full", &[], config);

    assert_bit_identical(&report, &cells, &serial);
    assert!(report.cells.iter().all(|c| c.reused));
    let sharding = report.sharding.as_ref().expect("sharded runs fill the block");
    assert_eq!(sharding.resumed_cells, cells.len() as u64);
    assert!(sharding.workers.is_empty());
    assert_eq!(sharding.steals, 0);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_truncated_manifest_resumes_its_valid_prefix() {
    let cells = grid();
    let serial = serial_metrics(&cells);
    let path = tmp("resume-truncated", "mwm");
    let _ = std::fs::remove_file(&path);
    {
        let mut m = Manifest::create(&path, SEED, true, &cells).unwrap();
        for (key, metrics) in cells.iter().zip(&serial) {
            m.append(key, metrics).unwrap();
        }
    }
    // A crash mid-append leaves a torn final record: chop 10 bytes off
    // the tail, which lands inside the last cell frame.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();

    let config = ShardConfig {
        seed: SEED,
        small: true,
        workers: 0,
        batch: 2,
        manifest: Some(path.clone()),
        resume: true,
        ..ShardConfig::default()
    };
    let (report, summaries) = run_sharded("resume-truncated", &[None], config);

    // The valid prefix is trusted, the torn record is re-simulated, and
    // the merged result is still exact.
    assert_bit_identical(&report, &cells, &serial);
    let sharding = report.sharding.as_ref().expect("sharded runs fill the block");
    assert_eq!(sharding.resumed_cells, (cells.len() - 1) as u64);
    assert_eq!(summaries[0].cells, 1, "only the torn cell re-simulates");
    assert!(report.cells.last().map(|c| !c.reused).unwrap());

    let _ = std::fs::remove_file(&path);
}
