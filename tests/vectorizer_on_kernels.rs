//! The compiler story, end to end: run the §5.1 memory-vectorizer pass
//! on the *real kernel traces* (not synthetic patterns), prove bit-exact
//! equivalence through the emulator, and check the pass's decisions
//! match the paper's per-benchmark findings.

use mom3d::core::{vectorize, VectorizeConfig};
use mom3d::cpu::{MemorySystemKind, Processor, ProcessorConfig};
use mom3d::emu::Emulator;
use mom3d::kernels::{IsaVariant, Workload, WorkloadKind};

fn vectorized(kind: WorkloadKind) -> (Workload, mom3d::isa::Trace, mom3d::core::VectorizeReport) {
    let wl = Workload::build_small(kind, IsaVariant::Mom, 3).expect("builds");
    wl.verify().expect("verifies");
    let (trace, report) = vectorize(wl.trace(), &VectorizeConfig::default());
    (wl, trace, report)
}

/// The rewritten trace must reproduce the scalar reference on every
/// workload, converted or not.
#[test]
fn rewritten_traces_stay_bit_exact() {
    for kind in WorkloadKind::ALL {
        let (wl, trace, _) = vectorized(kind);
        let mut emu = Emulator::with_machine(wl.machine());
        emu.run(&trace).unwrap_or_else(|e| panic!("{kind}: emulation failed: {e}"));
        for check in wl.checks() {
            let actual = emu.machine().mem.read_bytes(check.addr, check.expected.len());
            assert_eq!(actual, check.expected, "{kind}: {}", check.what);
        }
    }
}

/// The pass converts the motion-estimation candidate streams (the
/// paper's flagship pattern).
#[test]
fn pass_converts_motion_estimation() {
    let (_, _, report) = vectorized(WorkloadKind::Mpeg2Encode);
    assert!(report.groups_converted >= 1, "{report:?}");
    assert!(report.loads_converted > 10, "{report:?}");
    assert!(report.traffic_reduction() > 0.5, "{report:?}");
}

/// The pass converts the GSM lag windows.
#[test]
fn pass_converts_gsm_lags() {
    let (_, _, report) = vectorized(WorkloadKind::GsmEncode);
    assert!(report.groups_converted >= 1, "{report:?}");
    assert!(report.traffic_reduction() > 0.3, "{report:?}");
}

/// The pass declines jpeg decode — the paper found no suitable patterns,
/// and a correct analysis must agree.
#[test]
fn pass_declines_jpeg_decode() {
    let (wl, trace, report) = vectorized(WorkloadKind::JpegDecode);
    assert_eq!(report.groups_converted, 0, "{report:?}");
    assert_eq!(trace.len(), wl.trace().len());
}

/// Compiler-output quality: the automatically vectorized
/// motion-estimation trace must recover most of the hand-coded 3D
/// version's cycle improvement.
#[test]
fn pass_output_performs_close_to_hand_code() {
    let (wl, auto_trace, _) = vectorized(WorkloadKind::Mpeg2Encode);
    let hand = Workload::build_small(WorkloadKind::Mpeg2Encode, IsaVariant::Mom3d, 3).unwrap();

    let run = |t: &mom3d::isa::Trace, mem| {
        Processor::new(ProcessorConfig::mom().with_memory(mem).with_warm_caches(true))
            .run(t)
            .expect("runs")
    };
    let plain = run(wl.trace(), MemorySystemKind::VectorCache).cycles;
    let auto_cycles = run(&auto_trace, MemorySystemKind::VectorCache3d).cycles;
    let hand_cycles = run(hand.trace(), MemorySystemKind::VectorCache3d).cycles;

    assert!(auto_cycles < plain, "the pass must pay for itself ({auto_cycles} vs {plain})");
    // Within 2x of hand-written 3D code.
    assert!(
        (auto_cycles as f64) < 2.0 * hand_cycles as f64,
        "auto {auto_cycles} vs hand {hand_cycles}"
    );
}

/// Repeated application reaches a fixpoint: each pass converts loads the
/// previous one had to drop for 3D-register pressure, conversions
/// decrease monotonically, and the fixpoint trace is still bit-exact.
#[test]
fn pass_reaches_a_correct_fixpoint() {
    use mom3d::core::vectorize_to_fixpoint;
    let wl = Workload::build_small(WorkloadKind::Mpeg2Encode, IsaVariant::Mom, 3).unwrap();
    let (fixed, reports) = vectorize_to_fixpoint(wl.trace(), &VectorizeConfig::default(), 10);
    assert!(reports.len() >= 2, "expected more than one productive pass");
    for w in reports.windows(2) {
        assert!(
            w[1].loads_converted <= w[0].loads_converted,
            "conversions must shrink: {reports:?}"
        );
    }
    assert_eq!(reports.last().unwrap().loads_converted, 0, "fixpoint reached");
    // Most loads convert; what remains are windows that genuinely cannot
    // get one of the two 3D registers (three live windows at once).
    let before = wl
        .trace()
        .iter()
        .filter(|i| i.opcode == mom3d::isa::Opcode::VLoad)
        .count();
    let after = fixed.iter().filter(|i| i.opcode == mom3d::isa::Opcode::VLoad).count();
    assert!(after * 2 < before, "{after} of {before} loads left unconverted");
    // And the result is still correct.
    let mut emu = Emulator::with_machine(wl.machine());
    emu.run(&fixed).expect("fixpoint trace executes");
    for check in wl.checks() {
        let actual = emu.machine().mem.read_bytes(check.addr, check.expected.len());
        assert_eq!(actual, check.expected, "{}", check.what);
    }
}
