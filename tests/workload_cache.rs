//! The cross-invocation workload-image cache must be a pure
//! optimization: a warm start produces bit-identical workloads and
//! metrics to a cold start, and a damaged cache (truncation, bit flips,
//! stale format versions, misfiled images) always degrades to a rebuild
//! — never to a wrong answer, never to an error.

use mom3d::cpu::MemorySystemKind;
use mom3d::kernels::{
    decode_workload, encode_workload, ImageError, ImageKey, IsaVariant, Workload, WorkloadKind,
    WORKLOAD_IMAGE_VERSION,
};
use mom3d_bench::{sweep, Runner, SimKey, WorkloadCache};
use std::path::PathBuf;

const SEED: u64 = 11;

/// A unique, throwaway cache directory per test (the tests in this
/// binary run in parallel, so they must not share directories).
fn temp_cache_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("mom3d-workload-cache-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_key(kind: WorkloadKind, variant: IsaVariant) -> ImageKey {
    ImageKey { kind, variant, seed: SEED, small: true }
}

fn build_small(kind: WorkloadKind, variant: IsaVariant) -> Workload {
    Workload::build_small(kind, variant, SEED).expect("workload builds")
}

#[test]
fn image_round_trip_is_bit_identical() {
    // One workload with 3D patterns and one without, so the codec sees
    // every instruction family the generators emit.
    for (kind, variant) in [
        (WorkloadKind::GsmEncode, IsaVariant::Mom3d),
        (WorkloadKind::JpegDecode, IsaVariant::Mmx),
    ] {
        let wl = build_small(kind, variant);
        let digest = wl.verify_digested().expect("workload verifies");
        let key = small_key(kind, variant);
        let bytes = encode_workload(&wl, &key, digest);
        let decoded = decode_workload(&bytes, &key).expect("image decodes");
        assert_eq!(decoded, wl, "{kind} {variant}: decoded workload must be bit-identical");
        assert_eq!(
            decoded.verify_digested().expect("decoded workload verifies"),
            digest,
            "{kind} {variant}: verification digest must survive the round trip"
        );
    }
}

#[test]
fn truncated_image_falls_back_to_rebuild() {
    let dir = temp_cache_dir("truncated");
    let cache = WorkloadCache::open(&dir).expect("cache opens");
    let (kind, variant) = (WorkloadKind::GsmEncode, IsaVariant::Mom);
    let key = small_key(kind, variant);
    let wl = build_small(kind, variant);
    let digest = wl.verify_digested().unwrap();
    cache.store(&wl, &key, digest);
    assert_eq!(cache.load(&key).expect("intact image loads"), wl);

    // Truncate the stored image mid-payload.
    let path = cache.image_path(&key);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
    assert!(cache.load(&key).is_none(), "truncated image must be a miss");
    assert!(cache.stats().rejected >= 1);
    assert!(!path.exists(), "rejected images are evicted");

    // The runner-level path rebuilds through the same cache.
    let runner = Runner::small(SEED).with_cache(WorkloadCache::open(&dir));
    let (rebuilt, _, from_cache) = runner.load_or_build(kind, variant);
    assert!(!from_cache, "load must fall back to a rebuild");
    assert_eq!(rebuilt, wl, "the rebuild matches the original build");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_image_falls_back_to_rebuild() {
    let dir = temp_cache_dir("bitflip");
    let cache = WorkloadCache::open(&dir).expect("cache opens");
    let (kind, variant) = (WorkloadKind::JpegEncode, IsaVariant::Mom);
    let key = small_key(kind, variant);
    let wl = build_small(kind, variant);
    cache.store(&wl, &key, wl.verify_digested().unwrap());

    // Flip one bit somewhere in the payload.
    let path = cache.image_path(&key);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(&path, &bytes).unwrap();

    assert!(cache.load(&key).is_none(), "bit-flipped image must be a miss");
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.rejected), (0, 1));
    let runner = Runner::small(SEED).with_cache(WorkloadCache::open(&dir));
    let (rebuilt, _, from_cache) = runner.load_or_build(kind, variant);
    assert!(!from_cache);
    assert_eq!(rebuilt, wl);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn format_version_bump_invalidates_images() {
    let (kind, variant) = (WorkloadKind::GsmEncode, IsaVariant::Mom);
    let key = small_key(kind, variant);
    let wl = build_small(kind, variant);
    let mut bytes = encode_workload(&wl, &key, wl.verify_digested().unwrap());
    // Patch the header's version field to a future version.
    let future = WORKLOAD_IMAGE_VERSION + 1;
    bytes[8..12].copy_from_slice(&future.to_le_bytes());
    assert_eq!(
        decode_workload(&bytes, &key),
        Err(ImageError::VersionMismatch { found: future }),
        "another format version must never decode"
    );
    // The version is also part of the file name, so a binary with a
    // bumped format never even opens images written by this one.
    assert!(WorkloadCache::file_name(&key).ends_with(&format!("v{WORKLOAD_IMAGE_VERSION}.mwl")));
}

#[test]
fn misfiled_image_is_rejected_by_key() {
    let dir = temp_cache_dir("misfiled");
    let cache = WorkloadCache::open(&dir).expect("cache opens");
    let key = small_key(WorkloadKind::GsmEncode, IsaVariant::Mom);
    let wl = build_small(key.kind, key.variant);
    cache.store(&wl, &key, wl.verify_digested().unwrap());

    // Copy the gsm image over the slot of another variant: the embedded
    // key must reject it even though checksum and digest are intact.
    let other = small_key(WorkloadKind::GsmEncode, IsaVariant::Mom3d);
    std::fs::copy(cache.image_path(&key), cache.image_path(&other)).unwrap();
    assert!(cache.load(&other).is_none(), "misfiled image must be rejected");
    assert!(cache.stats().rejected >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression test for the eviction race: a reader rejecting a corrupt
/// image must never delete the fresh, valid image a concurrent writer
/// renamed into place between the failed decode and the eviction. The
/// interleaving is probabilistic, so the race window is hammered many
/// times — with the old unconditional `remove_file` this fails within a
/// few dozen iterations; with the quarantine-rename eviction the valid
/// image survives every time.
#[test]
fn concurrent_store_survives_rejecting_reader() {
    let dir = temp_cache_dir("evict-race");
    let (kind, variant) = (WorkloadKind::GsmEncode, IsaVariant::Mom);
    let key = small_key(kind, variant);
    let wl = build_small(kind, variant);
    let digest = wl.verify_digested().unwrap();

    let reader = WorkloadCache::open(&dir).expect("cache opens");
    let writer = WorkloadCache::open(&dir).expect("cache opens");
    let path = reader.image_path(&key);

    for round in 0..40 {
        // Seed the slot with a corrupt image the reader will reject.
        std::fs::write(&path, b"definitely not a workload image").unwrap();
        std::thread::scope(|scope| {
            let rejecting_reader = scope.spawn(|| {
                let _ = reader.load(&key);
            });
            let storing_writer = scope.spawn(|| {
                writer.store(&wl, &key, digest);
            });
            rejecting_reader.join().unwrap();
            storing_writer.join().unwrap();
        });
        // Whatever the interleaving, the writer's valid image must be
        // on disk now (the reader may only ever evict the corrupt one).
        let survivor = WorkloadCache::open(&dir).expect("cache opens");
        assert_eq!(
            survivor.load(&key).as_ref(),
            Some(&wl),
            "round {round}: the rejecting reader deleted the writer's fresh image"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance property of the whole feature: a warm-cache sweep
/// skips every workload build (hit count = workload count) and its
/// metrics are bit-identical to the cold-cache sweep's. Since the
/// trace-specializing executor became the `Emulator::run` path, this
/// also pins warm ≡ cold with the JIT active; the companion binary
/// `tests/workload_cache_jit.rs` additionally proves the warm path
/// invokes the JIT zero times (that counter is process-global, so the
/// assertion needs a binary of its own).
#[test]
fn warm_sweep_equals_cold_sweep() {
    let dir = temp_cache_dir("warm-vs-cold");
    let cells: Vec<SimKey> = {
        let mut cells = Vec::new();
        for (kind, variant, memory) in [
            (WorkloadKind::GsmEncode, IsaVariant::Mom, MemorySystemKind::VectorCache),
            (WorkloadKind::GsmEncode, IsaVariant::Mom3d, MemorySystemKind::VectorCache3d),
            (WorkloadKind::JpegEncode, IsaVariant::Mom, MemorySystemKind::MultiBanked),
            (WorkloadKind::JpegEncode, IsaVariant::Mmx, MemorySystemKind::Ideal),
        ] {
            cells.push(SimKey { kind, variant, memory: memory.into(), l2_latency: 20 });
        }
        cells
    };
    let workload_pairs = 4;

    let mut cold = Runner::small(SEED).with_cache(WorkloadCache::open(&dir));
    let cold_report = sweep::run(&mut cold, &cells, 3);
    let cold_stats = cold_report.workload_cache.expect("cache attached");
    assert_eq!(cold_stats.hits, 0, "first run must build everything");
    assert_eq!(cold_stats.misses, workload_pairs);

    let mut warm = Runner::small(SEED).with_cache(WorkloadCache::open(&dir));
    let warm_report = sweep::run(&mut warm, &cells, 3);
    let warm_stats = warm_report.workload_cache.expect("cache attached");
    assert_eq!(
        (warm_stats.hits, warm_stats.misses, warm_stats.rejected),
        (workload_pairs, 0, 0),
        "warm run must load every workload from the cache"
    );

    assert_eq!(cold_report.cells.len(), warm_report.cells.len());
    for (c, w) in cold_report.cells.iter().zip(&warm_report.cells) {
        assert_eq!(c.key, w.key);
        assert_eq!(c.metrics, w.metrics, "{:?}: warm metrics must be bit-identical", c.key);
        assert_eq!(
            w.workload.verify,
            std::time::Duration::ZERO,
            "{:?}: a cache hit re-runs no verification",
            w.key
        );
    }
    // And both agree with an uncached serial runner.
    let mut plain = Runner::small(SEED);
    for c in &cold_report.cells {
        let m = plain.metrics(c.key.kind, c.key.variant, c.key.memory, c.key.l2_latency);
        assert_eq!(m, c.metrics, "{:?}: cache must not change results", c.key);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
