//! The autotuner must be reproducible end to end: with the same data
//! seed and tune seed, two independent runs — at different worker
//! counts — serialize to byte-identical `BENCH_tune.json`, and every
//! design point the search visits carries [`Metrics`] bit-identical to
//! a direct `Runner::metrics` simulation of the same [`SimKey`]. The
//! search is an optimization over *which* points to simulate, never
//! over *how* they are simulated.

use mom3d::kernels::WorkloadKind;
use mom3d_bench::tune::{dominates, tune, LocalExec, TuneConfig, TuneReport};
use mom3d_bench::Runner;

const SEED: u64 = 7;
const TUNE_SEED: u64 = 11;

/// Reduced-geometry config exercising both search paths: at one L2
/// latency the vector-cache family (6 points) fits the budget and is
/// swept exhaustively, while dram-burst/hbm-wide/pim-vector (54–162
/// points) fall back to seeded hill-climbing.
fn cfg() -> TuneConfig {
    TuneConfig {
        seed: SEED,
        tune_seed: TUNE_SEED,
        small: true,
        budget: 6,
        l2_latencies: vec![20],
        workloads: vec![WorkloadKind::GsmEncode, WorkloadKind::JpegDecode],
        backend: None,
        start_params: Vec::new(),
    }
}

fn run(threads: usize) -> TuneReport {
    let mut runner = Runner::small(SEED);
    let mut exec = LocalExec { runner: &mut runner, threads };
    tune(&cfg(), &mut exec).expect("tuning succeeds")
}

/// Same seeds, fresh runners, different worker counts → the same JSON,
/// byte for byte. The schema carries no wall-clock fields, so this is
/// an exact equality, not a tolerance check.
#[test]
fn same_seed_tune_runs_are_byte_identical() {
    let a = run(1).to_json();
    let b = run(4).to_json();
    assert_eq!(a, b, "same-seed tune runs must serialize identically");
    assert!(a.contains("\"schema\": \"mom3d-tune/v1\""), "schema tag missing:\n{a}");
    assert!(!a.contains("wall"), "wall-clock fields would break determinism:\n{a}");
}

/// Every visited point replays bit-identically on a fresh runner, the
/// frontier is drawn from the visited set and is mutually non-dominated,
/// and the two registry-only backends are searched without any binary
/// naming them.
#[test]
fn visited_points_match_direct_simulation() {
    let report = run(2);
    let mut fresh = Runner::small(SEED);
    for w in &report.workloads {
        let bases: Vec<&str> = w.families.iter().map(|f| f.base).collect();
        for base in ["hbm-wide", "pim-vector"] {
            assert!(bases.contains(&base), "{}: family {base} not searched", w.kind);
        }
        assert!(!w.visited.is_empty() && !w.frontier.is_empty());
        for e in &w.visited {
            let direct =
                fresh.metrics(e.key.kind, e.key.variant, e.key.memory, e.key.l2_latency);
            assert_eq!(e.metrics, direct, "{:?}: tuned metrics diverge from direct", e.key);
        }
        for p in &w.frontier {
            assert!(
                w.visited.iter().any(|e| e.key == p.key),
                "{:?}: frontier point was never visited",
                p.key
            );
            assert!(
                !w.frontier.iter().any(|q| dominates(q.objectives(), p.objectives())),
                "{:?}: dominated point on the frontier",
                p.key
            );
        }
    }
}
