//! End-to-end walkthrough of the pluggable memory-backend API: define a
//! new vector memory organization, register it, and run it through the
//! unmodified timing simulator and sweep engine.
//!
//! ```sh
//! cargo run --release --example custom_backend
//! ```

use mom3d::cpu::{Processor, ProcessorConfig};
use mom3d::kernels::{IsaVariant, Workload, WorkloadKind};
use mom3d::mem::{
    BackendEntry, BackendId, BackendRegistry, PortSchedule, VectorMemoryBackend,
};
use mom3d_bench::{sweep, Runner, SimKey};

/// A toy organization: two independent narrow ports, each delivering
/// one 64-bit word per cycle at *any* stride — no wide grants, no bank
/// conflicts. (Unrealistically kind to strided code and unrealistically
/// harsh on dense streams; it exists to show the trait surface, not to
/// model hardware.)
#[derive(Debug)]
struct DualPortToy;

impl VectorMemoryBackend for DualPortToy {
    fn id(&self) -> BackendId {
        BackendId::new("toy-dual-port")
    }

    fn display_name(&self) -> &'static str {
        "toy dual port"
    }

    fn describe(&self) -> String {
        "2 ports x 1 x 64 bit, stride-oblivious".into()
    }

    fn schedule(&mut self, blocks: &[(u64, u32)], _is_3d: bool) -> PortSchedule {
        let words: u64 = blocks.iter().map(|&(_, len)| (len as u64).div_ceil(8)).sum();
        PortSchedule {
            port_cycles: words.div_ceil(2) as u32,
            cache_accesses: words,
            words,
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Register the backend once at startup. After this line the id
    //    "toy-dual-port" works everywhere a paper organization does.
    //    `params` declares the knobs a `?key=value` id suffix (and the
    //    autotuner) may turn; the toy has none.
    BackendRegistry::register(BackendEntry {
        id: "toy-dual-port",
        display_name: "toy dual port",
        has_3d: false,
        is_ideal: false,
        build: |_params| Box::new(DualPortToy),
        params: &[],
    })?;
    let toy = BackendRegistry::parse("toy-dual-port").expect("just registered");

    // 2. Drive the timing simulator with it directly.
    let wl = Workload::build_small(WorkloadKind::GsmEncode, IsaVariant::Mom, 7)?;
    wl.verify()?;
    let cfg = ProcessorConfig::mom().with_memory(toy).with_warm_caches(true);
    let metrics = Processor::new(cfg).run(wl.trace())?;
    println!("direct run    : {metrics}");

    // 3. The sweep engine and runner cache accept the id unchanged.
    let mut runner = Runner::small(7);
    let cells: Vec<SimKey> = [WorkloadKind::GsmEncode, WorkloadKind::JpegDecode]
        .into_iter()
        .map(|kind| SimKey { kind, variant: IsaVariant::Mom, memory: toy, l2_latency: 20 })
        .collect();
    let report = sweep::run(&mut runner, &cells, 2);
    for cell in &report.cells {
        println!("sweep cell    : {} -> {} cycles", cell.key.kind, cell.metrics.cycles);
    }

    // 4. And the registry-driven reports pick it up without being told.
    let names: Vec<&str> =
        BackendRegistry::entries().iter().map(|e| e.display_name).collect();
    println!("registry now  : {}", names.join(", "));
    assert!(names.contains(&"toy dual port"));
    Ok(())
}
