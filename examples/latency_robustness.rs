//! Figure 10 in miniature: how L2 latency hurts MOM vs MOM+3D.
//!
//! Longer memory instructions act like binding prefetch: a `3dvload`
//! fetches data many cycles before the `3dvmov`s consume it, so the 3D
//! configuration tolerates a slow (or on-chip-DRAM, VIRAM-style) memory
//! far better.
//!
//! ```sh
//! cargo run --release --example latency_robustness
//! ```

use mom3d::cpu::{MemorySystemKind, Processor, ProcessorConfig};
use mom3d::kernels::{IsaVariant, Workload, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = WorkloadKind::GsmEncode;
    let mom = Workload::build(kind, IsaVariant::Mom, 7)?;
    let m3d = Workload::build(kind, IsaVariant::Mom3d, 7)?;
    mom.verify()?;
    m3d.verify()?;

    println!("{kind}: normalized execution time vs L2 hit latency\n");
    println!("{:>10} {:>12} {:>12} {:>20}", "L2 cycles", "MOM", "MOM+3D", "relative speedup");

    let mut base = None;
    for latency in [20, 30, 40, 50, 60] {
        let run = |wl: &Workload, mem| {
            Processor::new(
                ProcessorConfig::mom()
                    .with_memory(mem)
                    .with_l2_latency(latency)
                    .with_warm_caches(true),
            )
            .run(wl.trace())
        };
        let c2 = run(&mom, MemorySystemKind::VectorCache)?.cycles;
        let c3 = run(&m3d, MemorySystemKind::VectorCache3d)?.cycles;
        let b = *base.get_or_insert(c2) as f64;
        println!(
            "{latency:>10} {:>12.3} {:>12.3} {:>19.2}x",
            c2 as f64 / b,
            c3 as f64 / b,
            c2 as f64 / c3 as f64
        );
    }
    println!(
        "\nThe MOM curve climbs with latency; the MOM+3D curve barely moves —\n\
         the paper's §6.2 robustness result."
    );
    Ok(())
}
