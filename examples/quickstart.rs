//! Quickstart: build a media workload, check it against its scalar
//! reference, and time it on two memory systems.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mom3d::cpu::{MemorySystemKind, Processor, ProcessorConfig};
use mom3d::kernels::{IsaVariant, Workload, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the MPEG-2 motion-estimation workload in MOM (2D) and
    //    MOM+3D form. Each carries its trace, its initial memory image
    //    and the scalar reference's expected outputs.
    let mom = Workload::build(WorkloadKind::Mpeg2Encode, IsaVariant::Mom, 7)?;
    let mom3d = Workload::build(WorkloadKind::Mpeg2Encode, IsaVariant::Mom3d, 7)?;

    // 2. Functional check: the emulator must reproduce the reference
    //    bit-for-bit before any timing claims are made.
    mom.verify()?;
    mom3d.verify()?;
    println!("both traces verified against the scalar reference");
    println!("  MOM trace:    {:>8} instructions", mom.trace().len());
    println!("  MOM+3D trace: {:>8} instructions", mom3d.trace().len());

    // 3. Timing: the paper's MOM processor with the simple vector cache,
    //    with and without the 3D register file.
    let run = |wl: &Workload, mem: MemorySystemKind| {
        let cfg = ProcessorConfig::mom().with_memory(mem).with_warm_caches(true);
        Processor::new(cfg).run(wl.trace())
    };
    let m2 = run(&mom, MemorySystemKind::VectorCache)?;
    let m3 = run(&mom3d, MemorySystemKind::VectorCache3d)?;

    println!("\nvector cache          : {m2}");
    println!("vector cache + 3D RF  : {m3}");
    println!(
        "\n3D memory vectorization speedup: {:.2}x, traffic reduction {:.0}%, \
         effective bandwidth {:.2} -> {:.2} words/access",
        m2.cycles as f64 / m3.cycles as f64,
        100.0 * (1.0 - m3.vec_words as f64 / m2.vec_words as f64),
        m2.effective_bandwidth(),
        m3.effective_bandwidth(),
    );
    Ok(())
}
