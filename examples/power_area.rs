//! Table 3 and the Figure 11 energy model: what the 3D register file
//! costs in silicon and what it saves in L2 energy.
//!
//! ```sh
//! cargo run --release --example power_area
//! ```

use mom3d::power::{ConfigArea, L2Params, ProcessParams, RegFileSpec};

fn main() {
    println!("register file areas (Rixner wire-track model, exact Table 3):\n");
    for spec in [
        RegFileSpec::mmx(),
        RegFileSpec::mom(),
        RegFileSpec::accumulator(),
        RegFileSpec::dreg_3d(),
        RegFileSpec::pointer_3d(),
    ] {
        println!(
            "  {:<28} {:>9} bits, {:>2} ports -> {:>10} wt^2",
            spec.name,
            spec.total_bits(),
            spec.ports(),
            spec.area_wire_tracks()
        );
    }

    println!("\nconfiguration totals:");
    for cfg in [ConfigArea::mmx(), ConfigArea::mom(), ConfigArea::mom_3d()] {
        println!(
            "  {:<10} {:>10} wt^2   normalized {:.2}",
            cfg.name,
            cfg.total_wire_tracks(),
            cfg.normalized_to_mmx()
        );
    }
    println!(
        "\nThe 3D register file holds 8x the MMX file's bytes in less area,\n\
         because area grows with (3+P)(4+P) and its clustered lanes need\n\
         only 1R/1W ports — the paper's 50% area headline."
    );

    let process = ProcessParams::default();
    let e_l2 = L2Params::default().access_energy(&process);
    let e_rf = process.regfile_access_energy(&RegFileSpec::dreg_3d());
    println!("\nenergy per access at 0.18um / 1.8V (32-subarray 2MB L2):");
    println!("  L2 cache access:        {:>8.1} pJ", e_l2 * 1e12);
    println!("  3D register file slice: {:>8.1} pJ  ({:.0}x cheaper)", e_rf * 1e12, e_l2 / e_rf);
    println!(
        "\nEvery L2 access replaced by a 3D-register re-read saves ~{:.1} pJ —\n\
         the source of Figure 11's ~30% L2 power saving.",
        (e_l2 - e_rf) * 1e12
    );
}
