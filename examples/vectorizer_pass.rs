//! The §5.1 memory-vectorizer pass, run as a compiler would run it:
//! take the plain MOM trace of a real kernel, rewrite its 2D load groups
//! into `3dvload`/`3dvmov` sequences, prove functional equivalence, and
//! measure what the rewrite bought.
//!
//! ```sh
//! cargo run --release --example vectorizer_pass
//! ```

use mom3d::core::{vectorize, VectorizeConfig};
use mom3d::cpu::{MemorySystemKind, Processor, ProcessorConfig};
use mom3d::emu::Emulator;
use mom3d::kernels::{IsaVariant, Workload, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for kind in [WorkloadKind::Mpeg2Encode, WorkloadKind::GsmEncode, WorkloadKind::JpegDecode] {
        let wl = Workload::build(kind, IsaVariant::Mom, 7)?;
        let (rewritten, report) = vectorize(wl.trace(), &VectorizeConfig::default());

        println!("{kind}:");
        println!(
            "  {} candidate groups, {} converted; {} 2D loads became 3dvmovs \
             behind {} 3dvloads",
            report.groups_found,
            report.groups_converted,
            report.loads_converted,
            report.dvloads_emitted
        );
        println!(
            "  load traffic: {} -> {} words ({:.0}% reduction)",
            report.words_2d,
            report.words_3d,
            report.traffic_reduction() * 100.0
        );

        // Equivalence: execute the rewritten trace against the same
        // memory image and re-check the workload's expected outputs.
        let mut emu = Emulator::with_machine(wl.machine());
        emu.run(&rewritten)?;
        for check in wl.checks() {
            let actual = emu.machine().mem.read_bytes(check.addr, check.expected.len());
            assert_eq!(actual, check.expected, "{kind}: {} mismatch", check.what);
        }
        println!("  rewritten trace reproduces the scalar reference exactly");

        // Timing: what the pass is worth on the vector cache.
        if report.groups_converted > 0 {
            let run = |t, mem| {
                Processor::new(
                    ProcessorConfig::mom().with_memory(mem).with_warm_caches(true),
                )
                .run(t)
            };
            let before = run(wl.trace(), MemorySystemKind::VectorCache)?;
            let after = run(&rewritten, MemorySystemKind::VectorCache3d)?;
            println!(
                "  cycles {} -> {} ({:.2}x) without touching a line of kernel code",
                before.cycles,
                after.cycles,
                before.cycles as f64 / after.cycles as f64
            );
        } else {
            println!("  (no profitable windows — the pass correctly declines)");
        }
        println!();
    }
    Ok(())
}
