//! The paper's running example, end to end: full-search motion
//! estimation in all three ISA styles (Figure 1 / Figure 4).
//!
//! Shows how the 2D MOM ISA collapses the MMX instruction stream, and
//! how the 3D extension then collapses the *memory* stream: candidate
//! blocks one byte apart are fetched once into a 3D register and
//! re-sliced by `3dvmov`.
//!
//! ```sh
//! cargo run --release --example motion_estimation
//! ```

use mom3d::cpu::{MemorySystemKind, Metrics, Processor, ProcessorConfig};
use mom3d::kernels::{IsaVariant, Workload, WorkloadKind};

fn simulate(wl: &Workload, mem: MemorySystemKind) -> Result<Metrics, mom3d::cpu::SimError> {
    let base = match wl.variant() {
        IsaVariant::Mmx => ProcessorConfig::mmx(),
        _ => ProcessorConfig::mom(),
    };
    Processor::new(base.with_memory(mem).with_warm_caches(true)).run(wl.trace())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 7;
    println!("full-search motion estimation ({} candidate positions/block)\n", 32);

    let mut baseline_cycles = None;
    for (variant, mem) in [
        (IsaVariant::Mmx, MemorySystemKind::MultiBanked),
        (IsaVariant::Mom, MemorySystemKind::VectorCache),
        (IsaVariant::Mom3d, MemorySystemKind::VectorCache3d),
    ] {
        let wl = Workload::build(WorkloadKind::Mpeg2Encode, variant, seed)?;
        wl.verify()?;
        let stats = wl.trace().stats();
        let m = simulate(&wl, mem)?;
        if baseline_cycles.is_none() {
            baseline_cycles = Some(m.cycles);
        }
        println!("{variant} on {mem:?}:");
        println!("  trace: {stats}");
        if let Some(d3) = stats.avg_dim3() {
            println!(
                "  3rd dimension: {:.1} streams served per 3dvload (max {})",
                d3, stats.dim3_vl_max
            );
        }
        println!(
            "  {} cycles ({:.2}x vs MMX), {:.1} packed ops/cycle, \
             {:.2} words/access, L2 activity {}",
            m.cycles,
            baseline_cycles.unwrap() as f64 / m.cycles as f64,
            m.ops_per_cycle(),
            m.effective_bandwidth(),
            m.total_l2_activity(),
        );
        println!();
    }
    println!(
        "The k loop is not vectorizable (the min-update carries a dependence),\n\
         yet its memory accesses are: that is the paper's 3D memory vectorization."
    );
    Ok(())
}
