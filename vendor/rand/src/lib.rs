//! Offline, API-compatible subset of the `rand` crate.
//!
//! The workspace builds in environments with no crates.io access, so the
//! handful of `rand` APIs the kernels use — `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over integer ranges —
//! are reimplemented here on a xoshiro256++ core. The streams are *not*
//! bit-compatible with upstream `rand`; everything that consumes them
//! derives its expected values through the same generator, so only
//! determinism and distribution quality matter.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive integer range.
    ///
    /// Panics on empty ranges, like upstream `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform draw from `[0, span)` (`span > 0`).
///
/// Multiply-shift ("Lemire") reduction without the rejection step: the
/// bias is < 2^-64 per draw, far below anything a test could observe.
fn draw_below<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    // (x * span) >> 128 without 256-bit arithmetic: split x.
    let (hi, lo) = (x >> 64, x & u64::MAX as u128);
    let top = hi * span + ((lo * span) >> 64);
    top >> 64
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let off = draw_below(rng, span) as $wide;
                (self.start as $wide).wrapping_add(off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u128 + 1;
                let off = draw_below(rng, span) as $wide;
                (start as $wide).wrapping_add(off) as $t
            }
        }
    )*};
}
impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, good-quality; stands in for upstream's
    /// `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding routine.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let d7: Vec<u32> = (0..32).map(|_| SmallRng::seed_from_u64(7).gen_range(0..100)).collect();
        let d8: Vec<u32> = (0..32).map(|_| c.gen_range(0..100)).collect();
        assert_ne!(d7, d8);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
            let u = rng.gen_range(0u32..40);
            assert!(u < 40);
            let w = rng.gen_range(-255i32..=255);
            assert!((-255..=255).contains(&w));
        }
    }

    #[test]
    fn both_range_ends_reachable() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[(rng.gen_range(-3i32..=3) + 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "inclusive range ends must be reachable: {seen:?}");
    }
}
