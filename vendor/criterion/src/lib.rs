//! Offline, API-compatible subset of `criterion`.
//!
//! Supports the benchmark surface this workspace uses: `Criterion`,
//! `benchmark_group`, `Throughput`, `Bencher::iter`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! warmed briefly, then timed for a fixed measurement window, and the
//! mean time per iteration (plus derived throughput, when declared) is
//! printed. There are no statistical comparisons, plots or baselines —
//! this exists so `cargo bench` works in a network-less environment.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a group's element/byte counts convert times into rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup { _criterion: self, throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iterations` calls of `routine` back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// True when `MOM3D_BENCH_SMOKE` asks for single-iteration smoke runs
/// (CI uses this to prove benchmarks stay alive without paying their
/// measurement windows).
fn smoke_mode() -> bool {
    std::env::var_os("MOM3D_BENCH_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    // Calibrate: run single iterations until we know roughly how long one
    // takes, then size the measurement run to ~200 ms.
    let mut b = Bencher { iterations: 1, elapsed: Duration::ZERO };
    f(&mut b);
    if smoke_mode() {
        println!("  {id}: smoke mode, 1 iter in {:?}", b.elapsed);
        return;
    }
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(200);
    let iterations = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut b = Bencher { iterations, elapsed: Duration::ZERO };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / b.iterations as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.1} Melem/s)", n as f64 * 1e3 / mean_ns),
        Throughput::Bytes(n) => format!(" ({:.1} MB/s)", n as f64 * 1e3 / mean_ns),
    });
    println!(
        "  {id}: {mean_ns:.0} ns/iter over {} iters{}",
        b.iterations,
        rate.unwrap_or_default()
    );
}

/// Collects benchmark functions under one name, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
