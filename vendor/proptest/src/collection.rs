//! `collection::vec` — variable-length vectors of strategy output.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length range for [`vec()`]; built from `usize` ranges.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { min: r.start, max: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self { min: *r.start(), max: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u128;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
