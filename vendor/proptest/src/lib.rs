//! Offline, API-compatible subset of `proptest`.
//!
//! The workspace builds without crates.io access, so the property-test
//! surface the suite uses is reimplemented here:
//!
//! * [`strategy::Strategy`] with `prop_map`, ranges, tuples, [`strategy::Just`],
//!   [`strategy::Union`] (behind [`prop_oneof!`]);
//! * [`arbitrary::any`] for primitives;
//! * [`collection::vec`];
//! * the [`proptest!`] macro with `name: Type` and `pat in strategy`
//!   parameters and an optional `#![proptest_config(..)]` header;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Differences from upstream: cases are sampled from a per-test
//! deterministic RNG (seeded from the test name, so runs are
//! reproducible), there is **no shrinking** — a failing case panics with
//! the normal assertion message — and `prop_assume!` skips the case
//! without counting it as a success. Case count defaults to
//! [`test_runner::Config::DEFAULT_CASES`] and can be overridden with the
//! `PROPTEST_CASES` environment variable.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Entry macro: expands each property into a `#[test]` fn that samples
/// its parameters `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            for __case in 0..__config.resolved_cases() {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $crate::__proptest_bind! { __rng, ($($params)*) $body }
            }
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

/// Parameter binder: `pat in strategy` samples the strategy, `name: Type`
/// samples `any::<Type>()`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, () $body:block) => { $body };
    ($rng:ident, ($pat:pat in $strat:expr, $($rest:tt)*) $body:block) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng, ($($rest)*) $body }
    };
    ($rng:ident, ($pat:pat in $strat:expr) $body:block) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng, () $body }
    };
    ($rng:ident, ($name:ident : $ty:ty, $($rest:tt)*) $body:block) => {
        let $name: $ty =
            $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind! { $rng, ($($rest)*) $body }
    };
    ($rng:ident, ($name:ident : $ty:ty) $body:block) => {
        $crate::__proptest_bind! { $rng, ($name: $ty,) $body }
    };
}

/// Union of boxed strategies sampled uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// No shrinking here, so these are plain assertions with the sampled
/// values visible in the panic message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when the assumption fails. Only meaningful
/// directly inside a `proptest!` body (it `continue`s the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}
