//! Deterministic per-test RNG and case-count configuration.

/// Mirror of `proptest::test_runner::Config`, reduced to the case count.
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    /// Default case count — deliberately modest so the whole workspace
    /// suite stays well under the CI time budget. Override per-block with
    /// `#![proptest_config(ProptestConfig::with_cases(n))]` or globally
    /// with the `PROPTEST_CASES` environment variable.
    pub const DEFAULT_CASES: u32 = 64;

    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` env override.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: Self::DEFAULT_CASES }
    }
}

/// SplitMix64 stream seeded from the test name and case index, so every
/// test sees a different but fully reproducible sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `span` (`span > 0`), multiply-shift reduction.
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        if span == 1 {
            return 0;
        }
        let x = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        let (hi, lo) = (x >> 64, x & u64::MAX as u128);
        (hi * span + ((lo * span) >> 64)) >> 64
    }
}
