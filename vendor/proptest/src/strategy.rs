//! The `Strategy` trait and the combinators the suite uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values. Object-safe: only `sample` is
/// required; the combinators are `Self: Sized` provided methods.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.sample(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u128) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let off = rng.below(span) as $wide;
                (self.start as $wide).wrapping_add(off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u128 + 1;
                let off = rng.below(span) as $wide;
                (start as $wide).wrapping_add(off) as $t
            }
        }
    )*};
}
impl_range_strategy!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
);
