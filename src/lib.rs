//! # mom3d — Three-Dimensional Memory Vectorization
//!
//! Umbrella crate for a full reproduction of Corbal, Espasa & Valero,
//! *"Three-Dimensional Memory Vectorization for High Bandwidth Media
//! Memory Systems"*, MICRO-35 (2002).
//!
//! The paper extends MOM — a 2-dimensional matrix/vector multimedia ISA —
//! with a second-level **3D vector register file** plus two instructions
//! (`3dvload`, `3dvmov`) that vectorize *memory accesses* along a third
//! loop dimension even when that loop is not computationally
//! vectorizable. This workspace implements the whole system stack the
//! paper evaluates:
//!
//! * [`simd`] — µSIMD (MMX-like) packed arithmetic on 64-bit words;
//! * [`isa`] — the MOM 2D vector ISA and its 3D memory extension;
//! * [`mem`] — main memory, L1/L2 caches, the multi-banked and
//!   vector-cache port systems;
//! * [`emu`] — a functional (architecturally precise) emulator;
//! * [`core`] — the paper's contribution: the 3D register file, pointer
//!   registers, stream overlap analysis and the memory-vectorizer pass;
//! * [`cpu`] — a Jinks-like 8-way out-of-order timing simulator;
//! * [`kernels`] — the five Mediabench-equivalent media workloads in
//!   MMX, MOM and MOM+3D form;
//! * [`power`] — Rixner-style register-file area and power models plus
//!   an L2 energy model.
//!
//! ## Quickstart
//!
//! ```
//! use mom3d::kernels::{Workload, WorkloadKind, IsaVariant};
//! use mom3d::cpu::{Processor, ProcessorConfig, MemorySystemKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a small MPEG-2 motion-estimation workload in MOM+3D form.
//! let wl = Workload::build(WorkloadKind::Mpeg2Encode, IsaVariant::Mom3d, 7)?;
//!
//! // Run it through the timing simulator with the vector cache + 3D RF.
//! let cfg = ProcessorConfig::mom().with_memory(MemorySystemKind::VectorCache3d);
//! let metrics = Processor::new(cfg).run(wl.trace())?;
//! assert!(metrics.cycles > 0);
//! # Ok(())
//! # }
//! ```

pub use mom3d_core as core;
pub use mom3d_cpu as cpu;
pub use mom3d_emu as emu;
pub use mom3d_isa as isa;
pub use mom3d_kernels as kernels;
pub use mom3d_mem as mem;
pub use mom3d_power as power;
pub use mom3d_simd as simd;
